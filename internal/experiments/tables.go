package experiments

import (
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ipe"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/tensor"
)

// Table1Workloads prints the workload-characteristics table: per model,
// the convolution count, parameter count and MACs, and per bit-width the
// average distinct weight values and zero-code sparsity per conv layer —
// the statistics that determine how much repetition IPE can harvest.
func Table1Workloads(cfg Config) error {
	cfg = cfg.withDefaults()
	t := report.NewTable(
		fmt.Sprintf("Table 1: workload characteristics (input %dx%d, seed %d)", cfg.HW, cfg.HW, cfg.Seed),
		"model", "convs", "params", "MACs",
		"vals@2b", "sprs@2b", "vals@4b", "sprs@4b", "vals@8b", "sprs@8b")
	for _, m := range zooModels(cfg) {
		g := m.Build(1, cfg.Seed)
		if err := g.InferShapes(); err != nil {
			return err
		}
		convs := nn.ConvLayers(g)
		row := []string{
			m.Name,
			fmt.Sprint(len(convs)),
			report.Count(g.NumParams()),
			report.Count(g.MACs()),
		}
		for _, bits := range []int{2, 4, 8} {
			var vals, sprs float64
			for _, c := range convs {
				q := quant.Quantize(c.Weight, bits, quant.PerTensor)
				vals += float64(q.DistinctValues())
				sprs += q.Sparsity()
			}
			n := float64(len(convs))
			row = append(row, report.Num(vals/n), fmt.Sprintf("%.1f%%", sprs/n*100))
		}
		t.AddRow(row...)
	}
	emit(cfg, t)
	return nil
}

// layerCosts computes the per-output-pixel arithmetic costs of every
// implementation for one quantized conv weight.
type layerCosts struct {
	dense, csr, fact, ipeC ipe.Cost
	prog                   *ipe.Program
	stats                  ipe.Stats
}

func costsFor(q *quant.Quantized, cfg Config) (layerCosts, error) {
	m := q.Shape[0]
	k := q.NumElements() / m
	var lc layerCosts
	lc.dense = ipe.DenseCost(m, k)
	var nnz int64
	for _, c := range q.Codes {
		if c != 0 {
			nnz++
		}
	}
	lc.csr = ipe.SparseCost(nnz)
	lc.fact = baseline.NewFactorized(q).Cost()
	prog, stats, err := ipe.Encode(q, cfg.IPE)
	if err != nil {
		return lc, err
	}
	lc.prog, lc.stats = prog, stats
	lc.ipeC = prog.Cost()
	return lc, nil
}

// Table2Arithmetic prints the per-layer arithmetic-reduction table: scalar
// ops per output pixel under dense, CSR, UCNN-style factorized and IPE
// execution, across pruning sparsities, at the main bit-width.
func Table2Arithmetic(cfg Config) error {
	cfg = cfg.withDefaults()
	convs, err := resnetUniqueConvs(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 2: scalar ops per output pixel, ResNet-18 unique convs, %d-bit", cfg.Bits),
		"layer", "shape", "sparsity", "dense", "csr", "ucnn", "ipe",
		"ipe/dense", "ipe/ucnn")
	sparsities := []float64{0, 0.5, 0.8}
	if cfg.Fast {
		sparsities = []float64{0, 0.8}
	}
	for _, uc := range convs {
		spec := uc.Info.Spec
		shape := fmt.Sprintf("%dx%dx%dx%d", spec.OutC, spec.InC, spec.KH, spec.KW)
		for _, sp := range sparsities {
			q := pruneAndQuantize(uc.Info.Weight, sp, cfg.Bits, quant.PerTensor)
			lc, err := costsFor(q, cfg)
			if err != nil {
				return err
			}
			t.AddRow(uc.ID, shape, fmt.Sprintf("%.0f%%", sp*100),
				report.Count(lc.dense.Total()),
				report.Count(lc.csr.Total()),
				report.Count(lc.fact.Total()),
				report.Count(lc.ipeC.Total()),
				report.Speedup(lc.ipeC.Speedup(lc.dense)),
				report.Speedup(lc.ipeC.Speedup(lc.fact)))
		}
	}
	emit(cfg, t)
	return nil
}

// Table3Encoding prints the encoder-cost table: wall-clock encode time,
// merge rounds, live dictionary size, stream compression ratio and the
// depth actually used, per unique ResNet-18 convolution.
func Table3Encoding(cfg Config) error {
	cfg = cfg.withDefaults()
	convs, err := resnetUniqueConvs(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 3: encoding cost (%d-bit, dict %d, depth %d, tile %d)",
			cfg.Bits, cfg.IPE.MaxDict, cfg.IPE.MaxDepth, cfg.IPE.TileSize),
		"layer", "weights", "nnz", "time", "rounds", "dict", "slots", "depth", "stream-compr")
	for _, uc := range convs {
		q := quant.Quantize(uc.Info.Weight, cfg.Bits, quant.PerTensor)
		start := time.Now()
		prog, stats, err := ipe.Encode(q, cfg.IPE)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		t.AddRow(uc.ID,
			report.Count(int64(q.NumElements())),
			report.Count(int64(stats.InputSymbols)),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprint(stats.Rounds),
			fmt.Sprint(prog.DictSize()),
			fmt.Sprint(prog.AllocateScratch().NumSlots),
			fmt.Sprint(prog.MaxDepthUsed()),
			fmt.Sprintf("%.2fx", stats.CompressionRatio()))
	}
	emit(cfg, t)
	return nil
}

// resnetLayerProfiles aggregates whole-network accelerator profiles of
// ResNet-18's convolutions for each implementation.
func resnetLayerProfiles(cfg Config) (map[string]accel.KernelProfile, error) {
	g := nn.ResNet18(1, cfg.HW, 10, cfg.Seed)
	if err := g.InferShapes(); err != nil {
		return nil, err
	}
	convs := nn.ConvLayers(g)
	if cfg.Fast && len(convs) > 8 {
		convs = convs[:8]
	}
	profiles := map[string]accel.KernelProfile{}
	for _, c := range convs {
		dense := accel.DenseConvProfile(c.Spec, c.Batch, c.InH, c.InW)

		q := quant.Quantize(c.Weight, cfg.Bits, quant.PerTensor)
		var nnz int64
		for _, code := range q.Codes {
			if code != 0 {
				nnz++
			}
		}
		sparse := accel.SparseConvProfile(c.Spec, c.Batch, c.InH, c.InW, nnz)

		fl, err := baseline.NewConvFactorized(c.Weight, c.Bias, c.Spec, cfg.Bits, quant.PerTensor)
		if err != nil {
			return nil, err
		}
		var factSyms int
		for _, m := range fl.Mats {
			factSyms += m.K
		}
		fact := accel.FactorizedConvProfile(c.Spec, c.Batch, c.InH, c.InW, fl.Cost(), factSyms)

		il, _, err := ipe.EncodeConv(c.Weight, c.Bias, c.Spec, cfg.Bits, quant.PerTensor, cfg.IPE)
		if err != nil {
			return nil, err
		}
		ipeProf := accel.IPEConvProfile(il, c.Batch, c.InH, c.InW)

		for name, p := range map[string]accel.KernelProfile{
			"dense": dense, "csr": sparse, "ucnn": fact, "ipe": ipeProf,
		} {
			agg := profiles[name]
			agg.Name = name
			agg.Accumulate(p)
			profiles[name] = agg
		}
	}
	return profiles, nil
}

// Table4Energy prints the memory-traffic and energy table for ResNet-18's
// convolutions: DRAM bytes, SRAM accesses, modeled cycles and energy per
// inference under each implementation.
func Table4Energy(cfg Config) error {
	cfg = cfg.withDefaults()
	profiles, err := resnetLayerProfiles(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 4: ResNet-18 conv traffic & energy (input %dx%d, %d-bit)", cfg.HW, cfg.HW, cfg.Bits),
		"impl", "ops", "DRAM", "SRAM-acc", "cycles", "energy(uJ)", "vs dense")
	denseRes := cfg.Accel.Simulate(profiles["dense"])
	for _, name := range []string{"dense", "csr", "ucnn", "ipe"} {
		p := profiles[name]
		r := cfg.Accel.Simulate(p)
		t.AddRow(name,
			report.Count(p.Ops()),
			report.Bytes(r.DRAMBytes),
			report.Count(p.SRAMAccesses),
			report.Count(r.Cycles),
			report.Num(r.EnergyPJ/1e6),
			report.Speedup(float64(denseRes.Cycles)/float64(r.Cycles)))
	}
	emit(cfg, t)
	return nil
}

// Table5Storage prints the model-storage comparison: bytes needed to ship
// each unique ResNet-18 convolution's weights as dense float32, packed
// b-bit dense codes, CSR (4-byte value + 2-byte column), and the serialized
// IPE program (pair dictionary + emit stream, ipe.Program.WireSize).
func Table5Storage(cfg Config) error {
	cfg = cfg.withDefaults()
	convs, err := resnetUniqueConvs(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 5: weight storage per layer (%d-bit codes)", cfg.Bits),
		"layer", "dense-fp32", "packed-dense", "csr", "ipe-stream", "ipe/fp32")
	var sumDense, sumPacked, sumCSR, sumIPE int64
	for _, uc := range convs {
		q := quant.Quantize(uc.Info.Weight, cfg.Bits, quant.PerTensor)
		prog, _, err := ipe.Encode(q, cfg.IPE)
		if err != nil {
			return err
		}
		denseBytes := int64(q.NumElements()) * 4
		packedBytes := (int64(q.NumElements())*int64(cfg.Bits) + 7) / 8
		var nnz int64
		for _, c := range q.Codes {
			if c != 0 {
				nnz++
			}
		}
		csrBytes := nnz * 6
		ipeBytes := prog.WireSize()
		sumDense += denseBytes
		sumPacked += packedBytes
		sumCSR += csrBytes
		sumIPE += ipeBytes
		t.AddRow(uc.ID,
			report.Bytes(denseBytes), report.Bytes(packedBytes),
			report.Bytes(csrBytes), report.Bytes(ipeBytes),
			fmt.Sprintf("%.1f%%", float64(ipeBytes)/float64(denseBytes)*100))
	}
	t.AddRow("total",
		report.Bytes(sumDense), report.Bytes(sumPacked),
		report.Bytes(sumCSR), report.Bytes(sumIPE),
		fmt.Sprintf("%.1f%%", float64(sumIPE)/float64(sumDense)*100))
	emit(cfg, t)
	return nil
}

// Table6Sharing prints the cross-layer dictionary-sharing study: ResNet-18
// layers with repeated shapes are encoded separately and then jointly
// (ipe.EncodeShared); sharing should shrink the total dictionary (one
// scratchpad image serves all repeats) at equal arithmetic cost.
func Table6Sharing(cfg Config) error {
	cfg = cfg.withDefaults()
	convs, err := resnetUniqueConvs(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 6: cross-layer dictionary sharing (%d-bit)", cfg.Bits),
		"group", "layers", "sep-dict", "shared-dict", "dict-saving",
		"sep-ops", "shared-ops")
	r := tensorRNG(cfg.Seed + 500)
	for _, uc := range convs {
		if uc.Count < 2 {
			continue
		}
		// Materialize the repeated layers: same shape, independent weights
		// (as in the real network).
		qs := make([]*quant.Quantized, uc.Count)
		for i := range qs {
			w := uc.Info.Weight
			if i > 0 {
				w = w.Clone()
				tensor.FillGaussian(w, r, tensor.KaimingStd(w.NumElements()/w.Dim(0)))
			}
			qs[i] = quant.Quantize(w, cfg.Bits, quant.PerTensor)
		}
		var sepDict int
		var sepOps int64
		for _, q := range qs {
			p, _, err := ipe.Encode(q, cfg.IPE)
			if err != nil {
				return err
			}
			sepDict += p.DictSize()
			sepOps += p.Cost().Total()
		}
		// Shared encoding: give the joint dictionary the same total budget
		// the separate encodings had.
		shCfg := cfg.IPE
		if shCfg.MaxDict > 0 {
			shCfg.MaxDict *= uc.Count
		}
		progs, _, err := ipe.EncodeShared(qs, shCfg)
		if err != nil {
			return err
		}
		var sharedOps int64
		for _, p := range progs {
			c := p.Cost()
			// Dictionary adds are shared: count them once, not per layer.
			sharedOps += c.Total() - c.DictEntries
		}
		sharedOps += int64(progs[0].DictSize())
		t.AddRow(uc.ID, fmt.Sprint(uc.Count),
			fmt.Sprint(sepDict), fmt.Sprint(progs[0].DictSize()),
			fmt.Sprintf("%.1f%%", (1-float64(progs[0].DictSize())/float64(sepDict))*100),
			report.Count(sepOps), report.Count(sharedOps))
	}
	if t.NumRows() == 0 {
		t.AddRow("(no repeated shapes at this scale)")
	}
	emit(cfg, t)
	return nil
}

// tensorRNG is a tiny indirection so tables.go keeps a single tensor import
// site for RNG construction.
func tensorRNG(seed uint64) *tensor.RNG { return tensor.NewRNG(seed) }
