package experiments

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/autotune"
	"repro/internal/baseline"
	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/runtime"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// convImplResults simulates all four implementations of one conv layer and
// returns their modeled results keyed by name.
func convImplResults(spec tensor.ConvSpec, w *tensor.Tensor, n, h, wd int, cfg Config, sparsity float64) (map[string]accel.Result, error) {
	out := map[string]accel.Result{}
	wc := w.Clone()
	if sparsity > 0 {
		quant.PruneMagnitude(wc, sparsity)
	}
	// Dense uses the heuristic-scheduled float kernel (the cuDNN-like
	// baseline role).
	wl := schedule.Workload{Spec: spec, N: n, H: h, W: wd}
	sp := schedule.NewSpace(wl, cfg.Accel)
	bestDense := accel.Result{Cycles: math.MaxInt64}
	for _, idx := range [][]int{
		{len(sp.OCOpts) - 1, 0, len(sp.OWOpts) - 1, len(sp.ICOpts) - 1, 0, 0},
		{len(sp.OCOpts) - 1, 0, len(sp.OWOpts) - 1, len(sp.ICOpts) - 1, 0, 1},
		{len(sp.OCOpts) / 2, 0, len(sp.OWOpts) - 1, len(sp.ICOpts) / 2, 0, 0},
		{0, 0, len(sp.OWOpts) - 1, 0, 0, 0},
	} {
		if r, err := sp.At(idx).Simulate(wl, cfg.Accel); err == nil && r.Cycles < bestDense.Cycles {
			bestDense = r
		}
	}
	out["dense"] = bestDense

	q := quant.Quantize(wc, cfg.Bits, quant.PerTensor)
	var nnz int64
	for _, c := range q.Codes {
		if c != 0 {
			nnz++
		}
	}
	out["csr"] = cfg.Accel.Simulate(accel.SparseConvProfile(spec, n, h, wd, nnz))

	fl, err := baseline.NewConvFactorized(wc, nil, spec, cfg.Bits, quant.PerTensor)
	if err != nil {
		return nil, err
	}
	var factSyms int
	for _, m := range fl.Mats {
		factSyms += m.K
	}
	out["ucnn"] = cfg.Accel.Simulate(accel.FactorizedConvProfile(spec, n, h, wd, fl.Cost(), factSyms))

	il, _, err := ipe.EncodeConv(wc, nil, spec, cfg.Bits, quant.PerTensor, cfg.IPE)
	if err != nil {
		return nil, err
	}
	out["ipe"] = cfg.Accel.Simulate(accel.IPEConvProfile(il, n, h, wd))
	return out, nil
}

// Fig4PerLayer prints the per-layer speedup figure: modeled speedup over
// the dense baseline for CSR, UCNN and IPE on each unique ResNet-18
// convolution (one bar group per layer in the paper).
func Fig4PerLayer(cfg Config) error {
	cfg = cfg.withDefaults()
	convs, err := resnetUniqueConvs(cfg)
	if err != nil {
		return err
	}
	fig := report.NewFigure(
		fmt.Sprintf("Fig 4: per-layer speedup over dense, ResNet-18 unique convs, %d-bit", cfg.Bits),
		"layer")
	series := map[string]*report.Series{
		"csr":  {Name: "csr"},
		"ucnn": {Name: "ucnn"},
		"ipe":  {Name: "ipe"},
	}
	for i, uc := range convs {
		res, err := convImplResults(uc.Info.Spec, uc.Info.Weight,
			uc.Info.Batch, uc.Info.InH, uc.Info.InW, cfg, 0)
		if err != nil {
			return err
		}
		dense := float64(res["dense"].Cycles)
		for _, name := range []string{"csr", "ucnn", "ipe"} {
			s := series[name]
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, dense/float64(res[name].Cycles))
		}
	}
	for _, name := range []string{"csr", "ucnn", "ipe"} {
		fig.Add(*series[name])
	}
	emitFig(cfg, fig)
	fmt.Fprintf(cfg.Out, "  (x = unique conv index c1..c%d; y = speedup over dense)\n", len(convs))
	return nil
}

// Fig5EndToEnd prints the end-to-end figure: modeled whole-network latency
// per model under dense, auto-tuned dense, CSR, UCNN, IPE and the automatic
// per-operator selection.
func Fig5EndToEnd(cfg Config) error {
	cfg = cfg.withDefaults()
	t := report.NewTable(
		fmt.Sprintf("Fig 5: end-to-end modeled latency (us), batch 1, input %dx%d, %d-bit", cfg.HW, cfg.HW, cfg.Bits),
		"model", "dense", "dense-tuned", "winograd", "csr", "ucnn", "ipe", "auto", "auto impls")
	type variant struct {
		name string
		opts runtime.Options
	}
	budget := 64
	models := zooModels(cfg)
	if cfg.Fast {
		budget = 24
		models = models[:1] // LeNet-5 exercises every variant cheaply
	}
	for _, m := range models {
		variants := []variant{
			{"dense", runtime.Options{Force: runtime.ImplDense, Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE}},
			{"dense-tuned", runtime.Options{Force: runtime.ImplDense, Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE,
				TuneDense: true, TuneBudget: budget, Seed: cfg.Seed}},
			{"winograd", runtime.Options{Force: runtime.ImplWinograd, Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE}},
			{"csr", runtime.Options{Force: runtime.ImplCSR, Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE}},
			{"ucnn", runtime.Options{Force: runtime.ImplFactorized, Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE}},
			{"ipe", runtime.Options{Force: runtime.ImplIPE, Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE}},
			{"auto", runtime.Options{Bits: cfg.Bits, HW: cfg.Accel, IPE: cfg.IPE}},
		}
		row := []string{m.Name}
		var autoImpls string
		for _, v := range variants {
			g := m.Build(1, cfg.Seed)
			plan, err := runtime.Compile(g, v.opts)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", m.Name, v.name, err)
			}
			row = append(row, report.Num(plan.Total.Microseconds(cfg.Accel)))
			if v.name == "auto" {
				counts := plan.ImplCounts()
				autoImpls = fmt.Sprintf("d:%d c:%d u:%d i:%d",
					counts[runtime.ImplDense], counts[runtime.ImplCSR],
					counts[runtime.ImplFactorized], counts[runtime.ImplIPE])
			}
		}
		row = append(row, autoImpls)
		t.AddRow(row...)
	}
	emit(cfg, t)
	return nil
}

// Fig6aBits prints the bit-width sensitivity: IPE and UCNN speedup over
// dense on the mid-network layer as quantization goes from 1 to 8 bits.
// The decay toward 8 bits (and the crossover with dense) is the headline
// sensitivity of the paper.
func Fig6aBits(cfg Config) error {
	cfg = cfg.withDefaults()
	spec, w, h, wd := midLayer(cfg)
	fig := report.NewFigure("Fig 6a: speedup over dense vs quantization bits (mid layer)", "bits")
	ipeS := report.Series{Name: "ipe"}
	ucnnS := report.Series{Name: "ucnn"}
	bitsList := []int{1, 2, 3, 4, 5, 6, 8}
	if cfg.Fast {
		bitsList = []int{2, 4, 8}
	}
	for _, bits := range bitsList {
		c := cfg
		c.Bits = bits
		res, err := convImplResults(spec, w, 1, h, wd, c, 0)
		if err != nil {
			return err
		}
		dense := float64(res["dense"].Cycles)
		ipeS.X = append(ipeS.X, float64(bits))
		ipeS.Y = append(ipeS.Y, dense/float64(res["ipe"].Cycles))
		ucnnS.X = append(ucnnS.X, float64(bits))
		ucnnS.Y = append(ucnnS.Y, dense/float64(res["ucnn"].Cycles))
	}
	fig.Add(ipeS)
	fig.Add(ucnnS)
	emitFig(cfg, fig)
	return nil
}

// Fig6bDict prints the dictionary-budget sensitivity: IPE speedup, live
// dictionary size and stream compression as MaxDict sweeps from tiny to
// effectively unbounded — the "hardware-friendly constraints are cheap"
// evidence.
func Fig6bDict(cfg Config) error {
	cfg = cfg.withDefaults()
	_, w, _, _ := midLayer(cfg)
	t := report.NewTable(
		fmt.Sprintf("Fig 6b: dictionary budget sweep (mid layer, %d-bit)", cfg.Bits),
		"maxDict", "liveDict", "stream-compr", "ops/pixel", "speedup-vs-dense")
	dicts := []int{64, 256, 1024, 4096, 16384, 65536}
	if cfg.Fast {
		dicts = []int{64, 1024, 16384}
	}
	q := quant.Quantize(w, cfg.Bits, quant.PerTensor)
	m := q.Shape[0]
	k := q.NumElements() / m
	dense := ipe.DenseCost(m, k)
	for _, d := range dicts {
		c := cfg.IPE
		c.MaxDict = d
		prog, stats, err := ipe.Encode(q, c)
		if err != nil {
			return err
		}
		cost := prog.Cost()
		t.AddRow(fmt.Sprint(d),
			fmt.Sprint(prog.DictSize()),
			fmt.Sprintf("%.2fx", stats.CompressionRatio()),
			report.Count(cost.Total()),
			report.Speedup(cost.Speedup(dense)))
	}
	emit(cfg, t)
	return nil
}

// Fig6cSparsity prints the pruning-sparsity sensitivity: IPE vs CSR vs
// UCNN speedup over dense as magnitude pruning sweeps 0→95%. CSR overtakes
// dense only at high sparsity; IPE wins earlier because it exploits value
// repetition, not only zeros.
func Fig6cSparsity(cfg Config) error {
	cfg = cfg.withDefaults()
	spec, w, h, wd := midLayer(cfg)
	fig := report.NewFigure(
		fmt.Sprintf("Fig 6c: speedup over dense vs pruning sparsity (mid layer, %d-bit)", cfg.Bits),
		"sparsity%")
	series := map[string]*report.Series{
		"csr": {Name: "csr"}, "ucnn": {Name: "ucnn"}, "ipe": {Name: "ipe"},
	}
	sparsities := []float64{0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}
	if cfg.Fast {
		sparsities = []float64{0, 0.5, 0.9}
	}
	for _, sp := range sparsities {
		res, err := convImplResults(spec, w, 1, h, wd, cfg, sp)
		if err != nil {
			return err
		}
		dense := float64(res["dense"].Cycles)
		for _, name := range []string{"csr", "ucnn", "ipe"} {
			s := series[name]
			s.X = append(s.X, sp*100)
			s.Y = append(s.Y, dense/float64(res[name].Cycles))
		}
	}
	for _, name := range []string{"csr", "ucnn", "ipe"} {
		fig.Add(*series[name])
	}
	emitFig(cfg, fig)
	return nil
}

// Fig7Tuning prints the auto-tuner convergence figure: best-found cost
// relative to the exhaustive optimum versus trial count, for random search,
// the genetic algorithm and simulated annealing, averaged over three conv
// shapes and several seeds.
func Fig7Tuning(cfg Config) error {
	cfg = cfg.withDefaults()
	shapes := []schedule.Workload{
		{Spec: tensor.ConvSpec{InC: 64, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, N: 1, H: 32, W: 32},
		{Spec: tensor.ConvSpec{InC: 128, OutC: 128, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}, N: 1, H: 32, W: 32},
		{Spec: tensor.ConvSpec{InC: 3, OutC: 64, KH: 7, KW: 7, StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}, N: 1, H: 64, W: 64},
	}
	budget := 200
	seeds := []uint64{1, 2, 3}
	if cfg.Fast {
		shapes = shapes[:1]
		budget = 60
		seeds = seeds[:1]
	}
	checkpoints := []int{10, 25, 50, 100, 200}
	fig := report.NewFigure("Fig 7: tuner convergence (best/optimal vs trials; 1.0 = optimal)", "trials")
	// Ground-truth optimum per shape, computed once.
	spaces := make([]*schedule.Space, len(shapes))
	optima := make([]float64, len(shapes))
	for i, wl := range shapes {
		spaces[i] = schedule.NewSpace(wl, cfg.Accel)
		optima[i] = autotune.Exhaustive{}.Tune(spaces[i], 0, 0).BestCost
	}
	tuners := []autotune.Tuner{autotune.Random{}, autotune.Genetic{}, autotune.Annealing{}, autotune.Surrogate{}}
	for _, tn := range tuners {
		s := report.Series{Name: tn.Name()}
		// One full-budget run per (shape, seed); checkpoints read the
		// best-so-far trace.
		var traces [][]autotune.Trial
		var opts []float64
		for i := range shapes {
			for _, seed := range seeds {
				r := tn.Tune(spaces[i], budget, seed)
				traces = append(traces, r.Trials)
				opts = append(opts, optima[i])
			}
		}
		for _, cp := range checkpoints {
			if cp > budget {
				continue
			}
			var ratioSum float64
			var count int
			for i, tr := range traces {
				if len(tr) < cp {
					continue
				}
				best := tr[cp-1].Best
				if math.IsInf(best, 1) {
					continue
				}
				ratioSum += best / opts[i]
				count++
			}
			if count == 0 {
				continue
			}
			s.X = append(s.X, float64(cp))
			s.Y = append(s.Y, ratioSum/float64(count))
		}
		fig.Add(s)
	}
	emitFig(cfg, fig)
	return nil
}

// Fig8Ablation prints the hardware-friendliness ablation: how the tile
// constraint, the depth bound and the merge policy change dictionary size,
// compression and op count on the mid-network layer (the greedy-policy row
// runs on a reduced layer: exact BPE is quadratic).
func Fig8Ablation(cfg Config) error {
	cfg = cfg.withDefaults()
	_, w, _, _ := midLayer(cfg)
	q := quant.Quantize(w, cfg.Bits, quant.PerTensor)
	m := q.Shape[0]
	k := q.NumElements() / m
	dense := ipe.DenseCost(m, k)
	t := report.NewTable(
		fmt.Sprintf("Fig 8: encoder ablation (mid layer, %d-bit)", cfg.Bits),
		"config", "dict", "depth", "stream-compr", "ops/pixel", "speedup-vs-dense")
	base := cfg.IPE
	// The depth/tile rows run with an unbounded dictionary so those
	// constraints actually bind: under the default budget the dictionary
	// fills first and masks them (exactly why Fig 6b sweeps D separately).
	rows := []struct {
		name string
		cfg  ipe.Config
	}{
		{"default (tile, D, L)", base},
		{"no dict budget", ipe.Config{MaxDepth: base.MaxDepth, TileSize: base.TileSize}},
		{"global (no tile)", ipe.Config{MaxDepth: base.MaxDepth}},
		{"depth L=1", ipe.Config{TileSize: base.TileSize, MaxDepth: 1}},
		{"depth L=2", ipe.Config{TileSize: base.TileSize, MaxDepth: 2}},
		{"depth L=4", ipe.Config{TileSize: base.TileSize, MaxDepth: 4}},
		{"unconstrained", ipe.Config{}},
	}
	for _, row := range rows {
		prog, stats, err := ipe.Encode(q, row.cfg)
		if err != nil {
			return err
		}
		cost := prog.Cost()
		t.AddRow(row.name,
			fmt.Sprint(prog.DictSize()),
			fmt.Sprint(prog.MaxDepthUsed()),
			fmt.Sprintf("%.2fx", stats.CompressionRatio()),
			report.Count(cost.Total()),
			report.Speedup(cost.Speedup(dense)))
	}
	// Greedy vs layered on a reduced layer (exact BPE is O(merges·stream)).
	small := tensor.New(16, 16, 3, 3)
	r := tensor.NewRNG(cfg.Seed + 7)
	tensor.FillGaussian(small, r, 0.2)
	sq := quant.Quantize(small, cfg.Bits, quant.PerTensor)
	sm := sq.Shape[0]
	sk := sq.NumElements() / sm
	sdense := ipe.DenseCost(sm, sk)
	for _, pol := range []ipe.Policy{ipe.PolicyLayered, ipe.PolicyGreedy} {
		c := ipe.Config{MaxDict: base.MaxDict, MaxDepth: base.MaxDepth,
			TileSize: base.TileSize, Policy: pol}
		prog, stats, err := ipe.Encode(sq, c)
		if err != nil {
			return err
		}
		cost := prog.Cost()
		t.AddRow("small layer, "+pol.String(),
			fmt.Sprint(prog.DictSize()),
			fmt.Sprint(prog.MaxDepthUsed()),
			fmt.Sprintf("%.2fx", stats.CompressionRatio()),
			report.Count(cost.Total()),
			report.Speedup(cost.Speedup(sdense)))
	}
	emit(cfg, t)
	return nil
}

// Fig9Banks prints the scratchpad bank-conflict figure: the measured
// serialization factor of the decode stage's pair-operand gather stream,
// for tile-local versus global encoding, across bank counts. The claim
// under test: the tile constraint does not worsen (and slightly improves)
// bank behaviour under word-interleaved banking.
func Fig9Banks(cfg Config) error {
	cfg = cfg.withDefaults()
	_, w, _, _ := midLayer(cfg)
	q := quant.Quantize(w, cfg.Bits, quant.PerTensor)
	fig := report.NewFigure(
		fmt.Sprintf("Fig 9: decode-gather bank conflict factor (mid layer, %d-bit, 32 lanes)", cfg.Bits),
		"banks")
	variants := []struct {
		name string
		cfg  ipe.Config
	}{
		{"tile-local", ipe.Config{MaxDict: cfg.IPE.MaxDict, MaxDepth: cfg.IPE.MaxDepth, TileSize: cfg.IPE.TileSize}},
		{"global", ipe.Config{MaxDict: cfg.IPE.MaxDict, MaxDepth: cfg.IPE.MaxDepth}},
	}
	banksList := []int{8, 16, 32, 64, 128}
	if cfg.Fast {
		banksList = []int{8, 32, 128}
	}
	for _, v := range variants {
		prog, _, err := ipe.Encode(q, v.cfg)
		if err != nil {
			return err
		}
		addrs := accel.PairAddressStream(prog.Pairs)
		s := report.Series{Name: v.name}
		for _, banks := range banksList {
			st := accel.SimulateGather(addrs, 32, banks)
			s.X = append(s.X, float64(banks))
			s.Y = append(s.Y, st.ConflictFactor())
		}
		fig.Add(s)
	}
	emitFig(cfg, fig)
	return nil
}

// Fig10Hardware prints the accelerator-sensitivity figure: IPE's speedup
// over dense on the mid layer as the PE count and the DRAM bandwidth sweep
// independently. Expected shape: more PEs push kernels toward memory-bound
// where IPE's smaller stream wins bigger; starved bandwidth amplifies the
// same effect, while huge bandwidth reduces the contest to pure op counts.
func Fig10Hardware(cfg Config) error {
	cfg = cfg.withDefaults()
	spec, w, h, wd := midLayer(cfg)

	peFig := report.NewFigure(
		fmt.Sprintf("Fig 10a: IPE speedup over dense vs PE count (mid layer, %d-bit, 16 GB/s)", cfg.Bits),
		"PEs")
	peSeries := report.Series{Name: "ipe/dense"}
	pes := []int{32, 64, 128, 256, 512, 1024}
	if cfg.Fast {
		pes = []int{64, 256, 1024}
	}
	for _, pe := range pes {
		c := cfg
		c.Accel.PEs = pe
		res, err := convImplResults(spec, w, 1, h, wd, c, 0)
		if err != nil {
			return err
		}
		peSeries.X = append(peSeries.X, float64(pe))
		peSeries.Y = append(peSeries.Y, float64(res["dense"].Cycles)/float64(res["ipe"].Cycles))
	}
	peFig.Add(peSeries)
	emitFig(cfg, peFig)

	bwFig := report.NewFigure(
		fmt.Sprintf("Fig 10b: IPE speedup over dense vs DRAM bandwidth (mid layer, %d-bit, 256 PEs)", cfg.Bits),
		"GB/s")
	bwSeries := report.Series{Name: "ipe/dense"}
	bws := []float64{2, 4, 8, 16, 32, 64}
	if cfg.Fast {
		bws = []float64{2, 16, 64}
	}
	for _, bw := range bws {
		c := cfg
		c.Accel.DRAMBandwidthGBs = bw
		res, err := convImplResults(spec, w, 1, h, wd, c, 0)
		if err != nil {
			return err
		}
		bwSeries.X = append(bwSeries.X, bw)
		bwSeries.Y = append(bwSeries.Y, float64(res["dense"].Cycles)/float64(res["ipe"].Cycles))
	}
	bwFig.Add(bwSeries)
	emitFig(cfg, bwFig)
	return nil
}

// Fig11Distributions prints the value-distribution robustness check: IPE
// and UCNN speedup over dense on the mid layer when the synthetic weights
// come from different distributions. Gains should be robust — they depend
// on quantized value multiplicity, which any of these distributions
// provides — with heavier-tailed weights quantizing sparser and hence
// compressing more.
func Fig11Distributions(cfg Config) error {
	cfg = cfg.withDefaults()
	spec, _, h, wd := midLayer(cfg)
	t := report.NewTable(
		fmt.Sprintf("Fig 11: weight-distribution sensitivity (mid layer, %d-bit)", cfg.Bits),
		"distribution", "distinct-vals", "sparsity", "ucnn-speedup", "ipe-speedup")
	r := tensor.NewRNG(cfg.Seed + 900)
	dists := []struct {
		name string
		fill func(*tensor.Tensor)
	}{
		{"gaussian", func(w *tensor.Tensor) { tensor.FillGaussian(w, r, 0.05) }},
		{"uniform", func(w *tensor.Tensor) { tensor.FillUniform(w, r, -0.1, 0.1) }},
		{"laplacian", func(w *tensor.Tensor) {
			// Difference of exponentials via inverse-CDF on uniforms.
			d := w.Data()
			for i := range d {
				u := r.Float64() - 0.5
				sign := float32(1)
				if u < 0 {
					sign, u = -1, -u
				}
				d[i] = sign * float32(-0.05*logClamped(1-2*u))
			}
		}},
		{"bimodal", func(w *tensor.Tensor) {
			d := w.Data()
			for i := range d {
				center := 0.08
				if r.Intn(2) == 0 {
					center = -0.08
				}
				d[i] = float32(center + r.NormFloat64()*0.01)
			}
		}},
	}
	for _, dist := range dists {
		w := tensor.New(spec.WeightShape()...)
		dist.fill(w)
		q := quant.Quantize(w, cfg.Bits, quant.PerTensor)
		res, err := convImplResults(spec, w, 1, h, wd, cfg, 0)
		if err != nil {
			return err
		}
		dense := float64(res["dense"].Cycles)
		t.AddRow(dist.name,
			fmt.Sprint(q.DistinctValues()),
			fmt.Sprintf("%.1f%%", q.Sparsity()*100),
			report.Speedup(dense/float64(res["ucnn"].Cycles)),
			report.Speedup(dense/float64(res["ipe"].Cycles)))
	}
	emit(cfg, t)
	return nil
}

// logClamped is math.Log with the argument clamped away from zero so the
// inverse-CDF sampler cannot produce infinities.
func logClamped(x float64) float64 {
	if x < 1e-12 {
		x = 1e-12
	}
	return math.Log(x)
}
