package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestByteDeterminism guards the EXPERIMENTS.md claim that the bench output
// is byte-deterministic run to run: every experiment driver is executed
// twice in-process with the same seed and its output diffed byte for byte.
// Table 3 is the documented exception — its encoding-cost table includes a
// measured wall-clock column — so it is excluded here exactly as the claim
// excludes it.
func TestByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fast experiment suite twice")
	}
	for _, id := range IDs() {
		if id == "table3" {
			continue // wall-clock column, excluded from the claim
		}
		id := id
		t.Run(id, func(t *testing.T) {
			var a, b bytes.Buffer
			if err := Run(id, Config{Out: &a, Fast: true, Seed: 7}); err != nil {
				t.Fatal(err)
			}
			if err := Run(id, Config{Out: &b, Fast: true, Seed: 7}); err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(a.Bytes(), b.Bytes()) {
				return
			}
			al := strings.Split(a.String(), "\n")
			bl := strings.Split(b.String(), "\n")
			for i := 0; i < len(al) || i < len(bl); i++ {
				var la, lb string
				if i < len(al) {
					la = al[i]
				}
				if i < len(bl) {
					lb = bl[i]
				}
				if la != lb {
					t.Fatalf("output differs between identical runs at line %d:\n  run1: %q\n  run2: %q", i+1, la, lb)
				}
			}
			t.Fatal("outputs differ but no differing line found (length mismatch)")
		})
	}
}
