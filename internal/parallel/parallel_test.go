package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversRangeOnce checks that every index in [0, n) is visited
// exactly once for a spread of shard counts and range sizes, including
// shards > n and empty ranges.
func TestForCoversRangeOnce(t *testing.T) {
	pool := NewPool(4)
	for _, shards := range []int{1, 2, 3, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			counts := make([]int32, n)
			pool.For(shards, n, func(shard, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("shards=%d n=%d: index %d visited %d times", shards, n, i, c)
				}
			}
		}
	}
}

// TestForShardIndicesDistinct checks that shard indices are dense, unique,
// and in range — callers index per-shard scratch arenas with them.
func TestForShardIndicesDistinct(t *testing.T) {
	pool := NewPool(8)
	const shards, n = 6, 97
	var mu sync.Mutex
	seen := map[int]bool{}
	pool.For(shards, n, func(shard, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if shard < 0 || shard >= shards {
			t.Errorf("shard %d out of range [0, %d)", shard, shards)
		}
		if seen[shard] {
			t.Errorf("shard %d used twice", shard)
		}
		seen[shard] = true
	})
}

// TestForBlocksQuantumAligned checks that every shard boundary except the
// final hi lands on a multiple of the quantum.
func TestForBlocksQuantumAligned(t *testing.T) {
	pool := NewPool(4)
	const quantum = 64
	for _, n := range []int{1, 63, 64, 65, 1000} {
		var mu sync.Mutex
		var covered int
		pool.ForBlocks(8, n, quantum, func(shard, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if lo%quantum != 0 {
				t.Errorf("n=%d: shard lo %d not quantum-aligned", n, lo)
			}
			if hi%quantum != 0 && hi != n {
				t.Errorf("n=%d: shard hi %d neither aligned nor final", n, hi)
			}
			covered += hi - lo
		})
		if covered != n {
			t.Fatalf("n=%d: covered %d indices", n, covered)
		}
	}
}

// TestForNoTokensRunsInline checks that a zero-size pool degrades to
// sequential inline execution on the caller goroutine.
func TestForNoTokensRunsInline(t *testing.T) {
	pool := NewPool(0)
	var order []int
	pool.For(4, 8, func(shard, lo, hi int) {
		order = append(order, shard) // no synchronization: must be caller-only
	})
	if len(order) != 4 {
		t.Fatalf("got %d shards, want 4", len(order))
	}
	for i, s := range order {
		if s != i {
			t.Fatalf("inline execution out of order: %v", order)
		}
	}
}

// TestForNestedDoesNotDeadlock nests parallel regions deeper than the
// token count; the non-blocking acquire must degrade to inline execution
// instead of deadlocking.
func TestForNestedDoesNotDeadlock(t *testing.T) {
	pool := NewPool(2)
	var total int64
	pool.For(4, 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pool.For(4, 4, func(_, lo2, hi2 int) {
				for j := lo2; j < hi2; j++ {
					pool.For(2, 2, func(_, lo3, hi3 int) {
						atomic.AddInt64(&total, int64(hi3-lo3))
					})
				}
			})
		}
	})
	if total != 4*4*2 {
		t.Fatalf("nested total %d, want %d", total, 4*4*2)
	}
}

// TestSharedPoolSize pins the shared pool to at least one helper token so
// concurrency is exercised even on single-core machines.
func TestSharedPoolSize(t *testing.T) {
	if Shared().Size() < 1 {
		t.Fatalf("Shared() pool size %d, want >= 1", Shared().Size())
	}
	if Shared() != Shared() {
		t.Fatal("Shared() must return one process-wide pool")
	}
}
