// Package parallel provides the process-wide bounded worker pool that
// intra-op sharded kernels draw helper goroutines from. The pool never
// blocks: a shard runs on a helper goroutine only while a pool token is
// available, and runs inline on the caller otherwise. That makes nesting
// safe (a sharded kernel inside a RunBatch worker inside another pool user
// cannot deadlock) and bounds the total helper count globally, so intra-op
// and inter-chunk parallelism compose without oversubscription: no matter
// how many goroutines shard work simultaneously, at most pool-size helpers
// exist on top of the callers themselves.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Pool is a bounded source of helper goroutines. The zero value is not
// usable; construct with NewPool or use Shared.
type Pool struct {
	tokens chan struct{}
	// stats, when set, receives the pool's telemetry: where each shard
	// block ran, helper scheduling latency, and token occupancy. Held in an
	// atomic pointer so SetStats is safe against in-flight For calls; when
	// nil (the default) every For pays one atomic load and a branch.
	stats atomic.Pointer[metrics.PoolStats]
}

// NewPool builds a pool with the given number of helper tokens. size <= 0
// yields a pool that never spawns helpers (every shard runs inline).
func NewPool(size int) *Pool {
	if size < 0 {
		size = 0
	}
	return &Pool{tokens: make(chan struct{}, size)}
}

var (
	sharedOnce sync.Once
	shared     *Pool
)

// Shared returns the process-wide pool, sized GOMAXPROCS-1 (the caller of a
// parallel region always executes one shard itself, so GOMAXPROCS-1 helpers
// saturate the machine). On a single-core machine it keeps one token so
// concurrency is still exercised (e.g. under the race detector), at
// negligible cost since shards only spawn when a token is free.
func Shared() *Pool {
	sharedOnce.Do(func() {
		shared = NewPool(max(1, runtime.GOMAXPROCS(0)-1))
	})
	return shared
}

// For splits [0, n) into at most shards contiguous blocks and calls
// fn(shard, lo, hi) once per non-empty block. Shard indices are dense in
// [0, shards) and each is used by exactly one block, so callers may index
// per-shard resources (scratch arenas) with them. The caller always runs
// the final block itself; earlier blocks run on helper goroutines only
// while pool tokens are available and inline otherwise. For returns after
// every block has completed.
//
// Blocks partition the index space identically for a given (shards, n), so
// any computation that keeps each output's accumulation inside one block is
// bit-identical across pool sizes, token availability, and scheduling.
func (p *Pool) For(shards, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if shards > n {
		shards = n
	}
	if p == nil || shards <= 1 {
		fn(0, 0, n)
		return
	}
	st := p.stats.Load()
	st.EnterRegion(len(p.tokens))
	var wg sync.WaitGroup
	for s := 0; s < shards-1; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		if lo == hi {
			continue
		}
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			var spawned time.Time
			if st != nil {
				spawned = time.Now()
			}
			go func(s, lo, hi int) {
				defer func() {
					<-p.tokens
					wg.Done()
				}()
				if st != nil {
					st.SpawnWaitNs.Add(time.Since(spawned).Nanoseconds())
					st.HelperRuns.Add(1)
				}
				fn(s, lo, hi)
			}(s, lo, hi)
		default:
			if st != nil {
				st.InlineFallbacks.Add(1)
			}
			fn(s, lo, hi)
		}
	}
	if st != nil {
		st.CallerRuns.Add(1)
	}
	fn(shards-1, (shards-1)*n/shards, n)
	wg.Wait()
}

// SetStats attaches (or with nil detaches) a telemetry sink to the pool.
// Safe to call concurrently with For; in-flight regions finish against the
// sink they loaded at entry. runtime.EnableMetrics wires the shared pool
// into the process-wide recorder through this.
func (p *Pool) SetStats(st *metrics.PoolStats) { p.stats.Store(st) }

// ForBlocks is For with block boundaries aligned to multiples of quantum,
// for kernels whose inner loops are themselves blocked (e.g. the IPE
// matrix executor's column blocks). The final block absorbs the remainder.
func (p *Pool) ForBlocks(shards, n, quantum int, fn func(shard, lo, hi int)) {
	if quantum <= 1 {
		p.For(shards, n, fn)
		return
	}
	blocks := (n + quantum - 1) / quantum
	p.For(shards, blocks, func(shard, lo, hi int) {
		lo *= quantum
		hi *= quantum
		if hi > n {
			hi = n
		}
		fn(shard, lo, hi)
	})
}

// Size returns the pool's helper-token capacity.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return cap(p.tokens)
}
