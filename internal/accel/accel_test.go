package accel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestDefaultConfigValid(t *testing.T) {
	for _, c := range []Config{Default(), Small()} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := Default()
	bad.PEs = 0
	if bad.Validate() == nil {
		t.Fatal("0 PEs must be rejected")
	}
	bad = Default()
	bad.DRAMBandwidthGBs = -1
	if bad.Validate() == nil {
		t.Fatal("negative bandwidth must be rejected")
	}
	bad = Default()
	bad.EnergyMulPJ = -1
	if bad.Validate() == nil {
		t.Fatal("negative energy must be rejected")
	}
}

func TestSimulateComputeBound(t *testing.T) {
	c := Default()
	// Tiny traffic, lots of ops → compute bound.
	p := KernelProfile{Adds: 1 << 20, Muls: 1 << 20, DRAMBytes: 64}
	r := c.Simulate(p)
	if r.Cycles != r.ComputeCycles {
		t.Fatalf("should be compute bound: %+v", r)
	}
	want := (int64(2<<20) + int64(c.PEs) - 1) / int64(c.PEs)
	if r.ComputeCycles != want {
		t.Fatalf("compute cycles = %d, want %d", r.ComputeCycles, want)
	}
}

func TestSimulateMemoryBound(t *testing.T) {
	c := Default()
	// Huge traffic, few ops → bandwidth bound.
	p := KernelProfile{Adds: 10, DRAMBytes: 1 << 26}
	r := c.Simulate(p)
	if r.Cycles != r.MemCycles {
		t.Fatalf("should be memory bound: %+v", r)
	}
	if r.Cycles <= r.ComputeCycles {
		t.Fatal("memory-bound kernel should exceed its compute time")
	}
}

func TestSimulateLowerBoundsProperty(t *testing.T) {
	// Cycles >= both roofline components, energy strictly positive for
	// non-empty kernels.
	f := func(adds, muls, bytes uint32) bool {
		c := Default()
		p := KernelProfile{
			Adds: int64(adds % 1e6), Muls: int64(muls % 1e6),
			DRAMBytes: int64(bytes % 1e7), SRAMAccesses: int64(adds % 1e5),
		}
		r := c.Simulate(p)
		if r.Cycles < r.ComputeCycles || r.Cycles < r.MemCycles {
			return false
		}
		if p.Ops() > 0 && r.EnergyPJ <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRefetchChargedWhenWorkingSetOverflows(t *testing.T) {
	c := Default()
	p := KernelProfile{Adds: 100, DRAMBytes: 1 << 20, WorkingSetBytes: 3 * c.SRAMBytes}
	r := c.Simulate(p)
	if r.DRAMBytes != 3*p.DRAMBytes {
		t.Fatalf("refetch factor 3 expected: charged %d for base %d", r.DRAMBytes, p.DRAMBytes)
	}
	small := KernelProfile{Adds: 100, DRAMBytes: 1 << 20, WorkingSetBytes: c.SRAMBytes}
	if c.Simulate(small).DRAMBytes != small.DRAMBytes {
		t.Fatal("fitting working set must not be charged refetch")
	}
}

func TestEnergyAdditive(t *testing.T) {
	c := Default()
	p1 := KernelProfile{Adds: 1000, Muls: 500, SRAMAccesses: 2000, DRAMBytes: 4096}
	p2 := KernelProfile{Adds: 300, Muls: 700, SRAMAccesses: 900, DRAMBytes: 1024}
	var sum KernelProfile
	sum.Accumulate(p1)
	sum.Accumulate(p2)
	got := c.Simulate(sum).EnergyPJ
	want := c.Simulate(p1).EnergyPJ + c.Simulate(p2).EnergyPJ
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy not additive: %v vs %v", got, want)
	}
}

func TestSimulateTilesCoversAllWork(t *testing.T) {
	c := Default()
	p := KernelProfile{Adds: 1 << 18, Muls: 1 << 18, SRAMAccesses: 1 << 19, DRAMBytes: 1 << 22}
	tiles := SplitTiles(p, 16, 1<<20)
	var adds, muls, dram int64
	for _, t2 := range tiles {
		adds += t2.Adds
		muls += t2.Muls
		dram += t2.LoadBytes + t2.StoreBytes
	}
	if adds != p.Adds || muls != p.Muls {
		t.Fatalf("tiles lost ops: %d/%d vs %d/%d", adds, muls, p.Adds, p.Muls)
	}
	if dram != p.DRAMBytes {
		t.Fatalf("tiles lost traffic: %d vs %d", dram, p.DRAMBytes)
	}
	r := c.SimulateTiles("k", tiles)
	if r.Cycles <= 0 {
		t.Fatal("tile simulation produced no cycles")
	}
}

func TestSimulateTilesAtLeastRoofline(t *testing.T) {
	// The event simulation can only be slower than the ideal roofline
	// compute bound.
	c := Default()
	p := KernelProfile{Adds: 1 << 20, Muls: 1 << 20, DRAMBytes: 1 << 24}
	tiles := SplitTiles(p, 32, 1<<22)
	r := c.SimulateTiles("k", tiles)
	ideal := c.Simulate(p)
	if r.Cycles < ideal.ComputeCycles {
		t.Fatalf("tile sim %d cycles beat the compute roofline %d", r.Cycles, ideal.ComputeCycles)
	}
}

func TestSimulateTilesEmptyIsZero(t *testing.T) {
	if r := Default().SimulateTiles("k", nil); r.Cycles != 0 {
		t.Fatalf("empty tile list should take 0 cycles, got %d", r.Cycles)
	}
}

func TestSimulateTilesStallsWhenBandwidthStarved(t *testing.T) {
	c := Default()
	c.DRAMBandwidthGBs = 0.1 // starve the pipeline
	tiles := make([]Tile, 8)
	for i := range tiles {
		tiles[i] = Tile{LoadBytes: 1 << 20, Adds: 100}
	}
	r := c.SimulateTiles("k", tiles)
	if r.StallCycles == 0 {
		t.Fatal("bandwidth-starved pipeline must stall")
	}
}

func TestMicroseconds(t *testing.T) {
	c := Default() // 1 GHz → 1000 cycles per microsecond
	r := Result{Cycles: 5000}
	if got := r.Microseconds(c); got != 5 {
		t.Fatalf("Microseconds = %v, want 5", got)
	}
}

func TestResultAccumulate(t *testing.T) {
	a := Result{Cycles: 10, ComputeCycles: 8, MemCycles: 2, EnergyPJ: 5, DRAMBytes: 100}
	b := Result{Cycles: 20, ComputeCycles: 15, MemCycles: 5, EnergyPJ: 7, DRAMBytes: 200}
	a.Accumulate(b)
	if a.Cycles != 30 || a.EnergyPJ != 12 || a.DRAMBytes != 300 {
		t.Fatalf("Accumulate = %+v", a)
	}
}

func TestSymbolBytes(t *testing.T) {
	if symbolBytes(100) != 2 || symbolBytes(1<<16) != 2 || symbolBytes(1<<16+1) != 4 {
		t.Fatal("symbolBytes thresholds wrong")
	}
}

// buildIPELayer makes a small encoded conv layer for profile tests.
func buildIPELayer(t *testing.T, bits int) (*ipe.ConvLayer, tensor.ConvSpec) {
	t.Helper()
	r := tensor.NewRNG(50)
	spec := tensor.ConvSpec{InC: 8, OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, 0.2)
	layer, _, err := ipe.EncodeConv(w, nil, spec, bits, quant.PerTensor, ipe.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return layer, spec
}

func TestIPEProfileBeatsDenseAtLowBits(t *testing.T) {
	layer, spec := buildIPELayer(t, 2)
	c := Default()
	dense := c.Simulate(DenseConvProfile(spec, 1, 16, 16))
	ipeRes := c.Simulate(IPEConvProfile(layer, 1, 16, 16))
	if ipeRes.Cycles >= dense.Cycles {
		t.Fatalf("2-bit IPE (%d cycles) should beat dense (%d cycles)", ipeRes.Cycles, dense.Cycles)
	}
	if ipeRes.EnergyPJ >= dense.EnergyPJ {
		t.Fatalf("2-bit IPE energy (%v) should beat dense (%v)", ipeRes.EnergyPJ, dense.EnergyPJ)
	}
}

func TestProfilesHaveConsistentOutputTraffic(t *testing.T) {
	spec := tensor.ConvSpec{InC: 4, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	dense := DenseConvProfile(spec, 1, 8, 8)
	sparse := SparseConvProfile(spec, 1, 8, 8, 100)
	// Both include input (4*8*8) + output (8*8*8) words of activation
	// traffic; dense adds the 8*4*9 weight words.
	actBytes := int64(4*8*8+8*8*8) * 4
	if dense.DRAMBytes != actBytes+int64(8*4*9*4) {
		t.Fatalf("dense DRAM = %d", dense.DRAMBytes)
	}
	if sparse.DRAMBytes != actBytes+100*6 {
		t.Fatalf("sparse DRAM = %d", sparse.DRAMBytes)
	}
}

func TestDenseProfileMatchesSpecMACs(t *testing.T) {
	spec := tensor.ConvSpec{InC: 16, OutC: 32, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	p := DenseConvProfile(spec, 2, 32, 32)
	if p.Adds != spec.MACs(2, 32, 32) || p.Muls != p.Adds {
		t.Fatalf("profile MACs mismatch: %+v vs %d", p, spec.MACs(2, 32, 32))
	}
}

func TestSimulateGatherConflictFree(t *testing.T) {
	// Addresses hitting distinct banks per wave: no serialization.
	addrs := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	st := SimulateGather(addrs, 4, 8)
	if st.Waves != 2 || st.Cycles != 2 || st.Conflicts != 0 {
		t.Fatalf("conflict-free stream got %+v", st)
	}
	if st.ConflictFactor() != 1 {
		t.Fatalf("factor = %v", st.ConflictFactor())
	}
}

func TestSimulateGatherWorstCase(t *testing.T) {
	// All lanes hit bank 0: full serialization.
	addrs := []int32{0, 8, 16, 24}
	st := SimulateGather(addrs, 4, 8)
	if st.Waves != 1 || st.Cycles != 4 || st.Conflicts != 3 {
		t.Fatalf("same-bank stream got %+v", st)
	}
}

func TestSimulateGatherEmpty(t *testing.T) {
	st := SimulateGather(nil, 8, 8)
	if st.Waves != 0 || st.ConflictFactor() != 1 {
		t.Fatalf("empty stream got %+v", st)
	}
}

func TestPairAddressStream(t *testing.T) {
	pairs := []ipe.Pair{{A: 1, B: 2}, {A: 3, B: 4}}
	addrs := PairAddressStream(pairs)
	want := []int32{1, 2, 3, 4}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("stream = %v", addrs)
		}
	}
}

func TestIPEGatherConflictsReasonable(t *testing.T) {
	// A real encoded layer's pair stream against a 32-bank scratchpad
	// should serialize far less than the worst case (lanes/banks ratio).
	layer, _ := buildIPELayer(t, 4)
	var pairs []ipe.Pair
	for _, p := range layer.Programs {
		pairs = append(pairs, p.Pairs...)
	}
	if len(pairs) == 0 {
		t.Skip("no dictionary on this layer")
	}
	st := SimulateGather(PairAddressStream(pairs), 32, 32)
	if f := st.ConflictFactor(); f > 8 {
		t.Fatalf("conflict factor %v absurdly high", f)
	}
}

func TestSimulateTilesTraceMatchesUntraced(t *testing.T) {
	c := Default()
	p := KernelProfile{Adds: 1 << 18, Muls: 1 << 18, DRAMBytes: 1 << 22, SRAMAccesses: 1 << 19}
	tiles := SplitTiles(p, 64, 1<<20)
	plain := c.SimulateTiles("k", tiles)
	traced, traces := c.SimulateTilesTrace("k", tiles, 16)
	if plain.Cycles != traced.Cycles || plain.EnergyPJ != traced.EnergyPJ ||
		plain.StallCycles != traced.StallCycles {
		t.Fatalf("traced sim diverges: %+v vs %+v", traced, plain)
	}
	if len(traces) != 16 {
		t.Fatalf("trace cap not honored: %d", len(traces))
	}
	for i, tr := range traces {
		if tr.ComputeStart < tr.LoadEnd || tr.ComputeEnd < tr.ComputeStart {
			t.Fatalf("tile %d has inconsistent timing: %+v", i, tr)
		}
	}
}

func TestPrintTimeline(t *testing.T) {
	c := Default()
	p := KernelProfile{Adds: 1 << 16, DRAMBytes: 1 << 20}
	_, traces := c.SimulateTilesTrace("k", SplitTiles(p, 8, 1<<16), 8)
	var buf strings.Builder
	PrintTimeline(&buf, traces, 60)
	out := buf.String()
	if !strings.Contains(out, "pipeline timeline") || !strings.Contains(out, "█") {
		t.Fatalf("timeline output malformed:\n%s", out)
	}
	var empty strings.Builder
	PrintTimeline(&empty, nil, 60)
	if !strings.Contains(empty.String(), "no tiles") {
		t.Fatal("empty trace should say so")
	}
}

func TestFactorizedAndWinogradProfiles(t *testing.T) {
	spec := tensor.ConvSpec{InC: 8, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	fc := ipe.Cost{Adds: 500, Muls: 60, StreamSymbols: 500}
	fp := FactorizedConvProfile(spec, 1, 8, 8, fc, 72)
	if fp.Adds != 500*64 || fp.Muls != 60*64 {
		t.Fatalf("factorized profile ops wrong: %+v", fp)
	}
	if fp.StationaryBytes == 0 || fp.DRAMBytes <= fp.StationaryBytes {
		t.Fatalf("factorized profile traffic wrong: %+v", fp)
	}
	wc := ipe.Cost{Adds: 10000, Muls: 4096}
	wp := WinogradConvProfile(spec, 1, 8, 8, wc)
	if wp.Muls != 4096 || wp.StationaryBytes != int64(8*8*16*4) {
		t.Fatalf("winograd profile wrong: %+v", wp)
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ceilDiv(1, 0)
}
