package accel

import (
	"fmt"
	"io"
	"strings"
)

// TileTrace records one tile's timing in the double-buffered pipeline.
type TileTrace struct {
	// LoadStart/LoadEnd bracket the tile's DMA-in.
	LoadStart, LoadEnd int64
	// ComputeStart/ComputeEnd bracket its PE-array execution.
	ComputeStart, ComputeEnd int64
	// StoreEnd is when its DMA-out drains (0 if the tile stores nothing).
	StoreEnd int64
	// Stall is the PE idle time this tile induced.
	Stall int64
}

// SimulateTilesTrace is SimulateTiles with a per-tile timeline, for
// pipeline visualization (`inspire-tune -trace`). Semantics are identical;
// the trace is capped at maxTrace tiles to bound memory.
func (c Config) SimulateTilesTrace(name string, tiles []Tile, maxTrace int) (Result, []TileTrace) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if len(tiles) == 0 {
		return Result{}, nil
	}
	bpc := c.BytesPerCycle()
	xfer := func(bytes int64) int64 {
		if bytes == 0 {
			return 0
		}
		return c.DRAMLatencyCycles + int64(float64(bytes)/bpc)
	}
	var now, computeDone int64
	var res Result
	var totalAdds, totalMuls, totalSRAM, totalDRAM int64
	var traces []TileTrace
	for _, t := range tiles {
		tr := TileTrace{LoadStart: now}
		loadDone := now + xfer(t.LoadBytes)
		tr.LoadEnd = loadDone
		start := loadDone
		if computeDone > start {
			start = computeDone
		}
		compute := ceilDiv(t.Ops(), int64(c.PEs))
		stall := start - computeDone
		if computeDone == 0 {
			stall = 0
		}
		tr.ComputeStart = start
		tr.Stall = stall
		computeDone = start + compute
		tr.ComputeEnd = computeDone
		res.ComputeCycles += compute
		res.StallCycles += stall
		now = loadDone + xfer(t.StoreBytes)
		if t.StoreBytes > 0 {
			tr.StoreEnd = now
		}
		totalAdds += t.Adds
		totalMuls += t.Muls
		if t.SRAMAccesses > 0 {
			totalSRAM += t.SRAMAccesses
		} else {
			totalSRAM += 2 * t.Ops()
		}
		totalDRAM += t.LoadBytes + t.StoreBytes
		if len(traces) < maxTrace {
			traces = append(traces, tr)
		}
	}
	res.Cycles = computeDone
	if now > res.Cycles {
		res.Cycles = now
	}
	res.MemCycles = res.Cycles - res.ComputeCycles
	if res.MemCycles < 0 {
		res.MemCycles = 0
	}
	res.DRAMBytes = totalDRAM
	res.EnergyPJ = c.energy(KernelProfile{Name: name, Adds: totalAdds, Muls: totalMuls, SRAMAccesses: totalSRAM}, totalDRAM)
	return res, traces
}

// PrintTimeline renders a compact text Gantt of the traced tiles: one row
// per tile, '░' for the load phase, '█' for compute, '·' for stall,
// scaled to width columns.
func PrintTimeline(w io.Writer, traces []TileTrace, width int) {
	if len(traces) == 0 {
		fmt.Fprintln(w, "(no tiles)")
		return
	}
	if width < 10 {
		width = 10
	}
	var span int64
	for _, t := range traces {
		if t.ComputeEnd > span {
			span = t.ComputeEnd
		}
		if t.StoreEnd > span {
			span = t.StoreEnd
		}
	}
	if span == 0 {
		span = 1
	}
	col := func(cycle int64) int {
		c := int(cycle * int64(width) / span)
		if c >= width {
			c = width - 1
		}
		return c
	}
	fmt.Fprintf(w, "pipeline timeline (%d tiles shown, %d cycles, ░ load  █ compute  · stall)\n", len(traces), span)
	for i, t := range traces {
		row := []rune(strings.Repeat(" ", width))
		for c := col(t.LoadStart); c <= col(t.LoadEnd); c++ {
			row[c] = '░'
		}
		if t.Stall > 0 {
			for c := col(t.ComputeStart - t.Stall); c < col(t.ComputeStart); c++ {
				row[c] = '·'
			}
		}
		for c := col(t.ComputeStart); c <= col(t.ComputeEnd); c++ {
			row[c] = '█'
		}
		fmt.Fprintf(w, "  t%-3d %s\n", i, string(row))
	}
}
