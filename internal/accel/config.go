// Package accel is the cycle-approximate simulated spatial accelerator that
// substitutes for the paper's hardware testbed (DESIGN.md §2). It models a
// PE array fed by a double-buffered SRAM scratchpad over a DRAM channel,
// and converts kernel operation counts and memory traffic into cycles and
// energy. Two levels are provided: a roofline estimate (Simulate) and a
// tile-granular double-buffered event simulation (SimulateTiles).
//
// Energy constants follow the Horowitz ISSCC'14 per-operation figures for a
// 45 nm process, the de-facto standard of the accelerator literature.
package accel

import "fmt"

// Config parameterizes the simulated accelerator.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// PEs is the number of parallel scalar ALU lanes (MACs per cycle).
	PEs int
	// FreqGHz is the clock frequency in GHz.
	FreqGHz float64
	// SRAMBytes is the on-chip scratchpad capacity.
	SRAMBytes int64
	// DRAMBandwidthGBs is the off-chip bandwidth in GB/s.
	DRAMBandwidthGBs float64
	// DRAMLatencyCycles is the fixed cost of starting a DRAM burst.
	DRAMLatencyCycles int64

	// Per-operation energies in picojoules.
	EnergyAddPJ  float64 // 32-bit add
	EnergyMulPJ  float64 // 32-bit multiply
	EnergySRAMPJ float64 // per 4-byte SRAM access
	EnergyDRAMPJ float64 // per 4-byte DRAM access
}

// Default returns the evaluation's standard configuration: a 256-lane
// 1 GHz array with 512 KiB of SRAM and 16 GB/s of DRAM bandwidth — an
// edge-NPU class device.
func Default() Config {
	return Config{
		Name:              "inspire-npu",
		PEs:               256,
		FreqGHz:           1.0,
		SRAMBytes:         512 << 10,
		DRAMBandwidthGBs:  16,
		DRAMLatencyCycles: 100,
		EnergyAddPJ:       0.9,
		EnergyMulPJ:       3.7,
		EnergySRAMPJ:      5.0,
		EnergyDRAMPJ:      640.0,
	}
}

// Small returns a constrained configuration (64 lanes, 128 KiB SRAM,
// 4 GB/s) used by the sensitivity studies.
func Small() Config {
	c := Default()
	c.Name = "inspire-npu-small"
	c.PEs = 64
	c.SRAMBytes = 128 << 10
	c.DRAMBandwidthGBs = 4
	return c
}

// Validate rejects non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.PEs <= 0:
		return fmt.Errorf("accel: PEs must be positive, got %d", c.PEs)
	case c.FreqGHz <= 0:
		return fmt.Errorf("accel: FreqGHz must be positive, got %v", c.FreqGHz)
	case c.SRAMBytes <= 0:
		return fmt.Errorf("accel: SRAMBytes must be positive, got %d", c.SRAMBytes)
	case c.DRAMBandwidthGBs <= 0:
		return fmt.Errorf("accel: DRAM bandwidth must be positive, got %v", c.DRAMBandwidthGBs)
	case c.DRAMLatencyCycles < 0:
		return fmt.Errorf("accel: DRAM latency must be non-negative")
	case c.EnergyAddPJ < 0 || c.EnergyMulPJ < 0 || c.EnergySRAMPJ < 0 || c.EnergyDRAMPJ < 0:
		return fmt.Errorf("accel: energies must be non-negative")
	}
	return nil
}

// BytesPerCycle returns the DRAM bytes transferable per clock cycle.
func (c Config) BytesPerCycle() float64 {
	return c.DRAMBandwidthGBs / c.FreqGHz // GB/s over Gcycle/s = B/cycle
}

// KernelProfile aggregates what a kernel execution does, independent of how
// the counts were obtained (analytic cost model or instrumented run).
type KernelProfile struct {
	Name string
	// Adds and Muls are scalar ALU operations.
	Adds, Muls int64
	// SRAMAccesses counts 4-byte scratchpad reads+writes.
	SRAMAccesses int64
	// DRAMBytes counts off-chip traffic in bytes (reads + writes).
	DRAMBytes int64
	// StationaryBytes is the portion of DRAMBytes that the kernel wants
	// resident on chip (weights or the encoded instruction stream). Only
	// this portion is re-streamed when the working set overflows the
	// scratchpad; streaming activations cross DRAM once regardless.
	StationaryBytes int64
	// WorkingSetBytes is the kernel's peak on-chip footprint; when it
	// exceeds the SRAM capacity the simulator charges refetch traffic on
	// the stationary bytes.
	WorkingSetBytes int64
}

// Ops returns the total scalar ALU operation count.
func (p KernelProfile) Ops() int64 { return p.Adds + p.Muls }

// Add accumulates another profile into p (layer-wise aggregation).
func (p *KernelProfile) Accumulate(o KernelProfile) {
	p.Adds += o.Adds
	p.Muls += o.Muls
	p.SRAMAccesses += o.SRAMAccesses
	p.DRAMBytes += o.DRAMBytes
	p.StationaryBytes += o.StationaryBytes
	if o.WorkingSetBytes > p.WorkingSetBytes {
		p.WorkingSetBytes = o.WorkingSetBytes
	}
}

// Result is the outcome of a simulation.
type Result struct {
	// Cycles is the modeled execution time in clock cycles.
	Cycles int64
	// ComputeCycles and MemCycles are the compute-bound and
	// bandwidth-bound components (Cycles >= max of the two).
	ComputeCycles, MemCycles int64
	// StallCycles is the portion of Cycles the PEs spent waiting on DRAM
	// (tile simulation only; 0 for the roofline estimate).
	StallCycles int64
	// EnergyPJ is the total modeled energy in picojoules.
	EnergyPJ float64
	// DRAMBytes echoes the charged off-chip traffic (after refetch).
	DRAMBytes int64
}

// Microseconds converts the cycle count to wall time on configuration c.
func (r Result) Microseconds(c Config) float64 {
	return float64(r.Cycles) / (c.FreqGHz * 1e3)
}

// Accumulate adds another result (sequential layer execution).
func (r *Result) Accumulate(o Result) {
	r.Cycles += o.Cycles
	r.ComputeCycles += o.ComputeCycles
	r.MemCycles += o.MemCycles
	r.StallCycles += o.StallCycles
	r.EnergyPJ += o.EnergyPJ
	r.DRAMBytes += o.DRAMBytes
}
