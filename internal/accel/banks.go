package accel

import "repro/internal/ipe"

// Scratchpad bank-conflict analysis for gather-style kernels. The IPE
// decode stage issues, per cycle, one pair of operand reads per lane; the
// scratchpad is word-interleaved across banks (bank = address mod B), and
// simultaneous reads to the same bank serialize. This file measures — not
// estimates — the serialization of a concrete access stream, so the
// encoder ablations can show what the tile constraint does to bank
// behaviour.

// GatherStats summarizes the bank behaviour of one access stream.
type GatherStats struct {
	// Waves is the number of issue groups (ceil(len(addrs)/lanes)).
	Waves int64
	// Cycles is the serialized cycle count: per wave, the maximum number
	// of accesses landing in one bank.
	Cycles int64
	// Conflicts is Cycles − Waves: extra cycles lost to bank conflicts.
	Conflicts int64
}

// ConflictFactor returns Cycles/Waves (1.0 = conflict-free).
func (g GatherStats) ConflictFactor() float64 {
	if g.Waves == 0 {
		return 1
	}
	return float64(g.Cycles) / float64(g.Waves)
}

// SimulateGather replays an address stream against a word-interleaved
// scratchpad: lanes addresses issue per wave, each wave costs the maximum
// per-bank access count. banks and lanes must be positive.
func SimulateGather(addrs []int32, lanes, banks int) GatherStats {
	if lanes <= 0 || banks <= 0 {
		panic("accel: SimulateGather needs positive lanes and banks")
	}
	var st GatherStats
	loads := make([]int32, banks)
	for start := 0; start < len(addrs); start += lanes {
		end := min(start+lanes, len(addrs))
		for i := range loads {
			loads[i] = 0
		}
		var worst int32 = 1
		for _, a := range addrs[start:end] {
			b := int(a) % banks
			if b < 0 {
				b += banks
			}
			loads[b]++
			if loads[b] > worst {
				worst = loads[b]
			}
		}
		st.Waves++
		st.Cycles += int64(worst)
	}
	st.Conflicts = st.Cycles - st.Waves
	return st
}

// PairAddressStream flattens a pair dictionary into the operand address
// stream its decode stage issues: A then B of each entry, in dependency
// order. Addresses are the scratchpad word indices (symbol ids).
func PairAddressStream(pairs []ipe.Pair) []int32 {
	out := make([]int32, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p.A, p.B)
	}
	return out
}
