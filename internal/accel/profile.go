package accel

import (
	"repro/internal/ipe"
	"repro/internal/tensor"
)

// wordBytes is the activation/weight word size (float32 / int32 words).
const wordBytes = 4

// symbolBytes returns the fixed-width encoding size of a symbol id for a
// program with the given symbol count: 2 bytes up to 64Ki symbols, 4 after.
func symbolBytes(numSymbols int) int64 {
	if numSymbols <= 1<<16 {
		return 2
	}
	return 4
}

// DenseConvProfile models a dense direct/im2col convolution: one MAC per
// weight tap per output pixel; weights, input and output each cross DRAM
// once (ideal reuse — refetch is charged by the simulator when the weights
// overflow the scratchpad).
func DenseConvProfile(spec tensor.ConvSpec, n, h, w int) KernelProfile {
	spec = spec.Normalize()
	oh, ow := spec.OutDims(h, w)
	macs := spec.MACs(n, h, w)
	weightBytes := int64(spec.WeightShape().NumElements()) * wordBytes
	inBytes := int64(n*spec.InC*h*w) * wordBytes
	outBytes := int64(n*spec.OutC*oh*ow) * wordBytes
	return KernelProfile{
		Name:            "dense",
		Adds:            macs,
		Muls:            macs,
		SRAMAccesses:    2*macs + int64(n*spec.OutC*oh*ow),
		DRAMBytes:       weightBytes + inBytes + outBytes,
		StationaryBytes: weightBytes,
		WorkingSetBytes: weightBytes + int64(spec.InC*spec.KH)*int64(w)*wordBytes,
	}
}

// SparseConvProfile models CSR execution over pruned weights: one
// multiply-add per stored nonzero per output pixel, with 6-byte (4-byte
// value + 2-byte column) weight storage.
func SparseConvProfile(spec tensor.ConvSpec, n, h, w int, nnz int64) KernelProfile {
	spec = spec.Normalize()
	oh, ow := spec.OutDims(h, w)
	pixels := int64(n) * int64(oh) * int64(ow)
	weightBytes := nnz * (wordBytes + 2)
	inBytes := int64(n*spec.InC*h*w) * wordBytes
	outBytes := int64(n*spec.OutC*oh*ow) * wordBytes
	return KernelProfile{
		Name:            "sparse-csr",
		Adds:            nnz * pixels,
		Muls:            nnz * pixels,
		SRAMAccesses:    3*nnz*pixels + int64(n*spec.OutC*oh*ow), // value, index, activation
		DRAMBytes:       weightBytes + inBytes + outBytes,
		StationaryBytes: weightBytes,
		WorkingSetBytes: weightBytes + int64(spec.InC*spec.KH)*int64(w)*wordBytes,
	}
}

// FactorizedConvProfile models UCNN-style value-factorized execution (no
// pair merging): per pixel the per-row index sets are summed raw, then one
// multiply per distinct value. cost is the per-pixel ipe.FactorizedCost;
// streamSymbols the total index-stream length.
func FactorizedConvProfile(spec tensor.ConvSpec, n, h, w int, cost ipe.Cost, numSymbols int) KernelProfile {
	spec = spec.Normalize()
	oh, ow := spec.OutDims(h, w)
	pixels := int64(n) * int64(oh) * int64(ow)
	symB := symbolBytes(numSymbols)
	streamBytes := cost.StreamSymbols*symB + cost.Muls*(wordBytes+2) // per-term value+len headers
	inBytes := int64(n*spec.InC*h*w) * wordBytes
	outBytes := int64(n*spec.OutC*oh*ow) * wordBytes
	return KernelProfile{
		Name:            "factorized",
		Adds:            cost.Adds * pixels,
		Muls:            cost.Muls * pixels,
		SRAMAccesses:    (2*cost.Adds + 2*cost.Muls) * pixels,
		DRAMBytes:       streamBytes + inBytes + outBytes,
		StationaryBytes: streamBytes,
		WorkingSetBytes: streamBytes + int64(spec.InC*spec.KH)*int64(w)*wordBytes,
	}
}

// IPEConvProfile models execution of an index-pair-encoded convolution.
// The weights are replaced by the encoded instruction stream: each
// dictionary entry is two symbol ids, each term is a (value, length)
// header plus its symbol list. The dictionary partial sums occupy
// scratchpad words beyond the input tile.
func IPEConvProfile(layer *ipe.ConvLayer, n, h, w int) KernelProfile {
	spec := layer.Spec
	oh, ow := spec.OutDims(h, w)
	pixels := int64(n) * int64(oh) * int64(ow)
	var perPixel ipe.Cost
	var streamBytes, scratchWords int64
	for _, prog := range layer.Programs {
		c := prog.Cost()
		perPixel.Adds += c.Adds
		perPixel.Muls += c.Muls
		symB := symbolBytes(prog.NumSymbols())
		streamBytes += int64(prog.DictSize())*2*symB + // pair entries
			c.StreamSymbols*symB + c.Muls*(wordBytes+2) // term lists + headers
		if sw := c.ScratchWords; sw > scratchWords {
			scratchWords = sw
		}
	}
	inBytes := int64(n*spec.InC*h*w) * wordBytes
	outBytes := int64(n*spec.OutC*oh*ow) * wordBytes
	return KernelProfile{
		Name:            "ipe",
		Adds:            perPixel.Adds * pixels,
		Muls:            perPixel.Muls * pixels,
		SRAMAccesses:    (3*perPixel.Adds + 2*perPixel.Muls) * pixels, // 2 reads + 1 write per add
		DRAMBytes:       streamBytes + inBytes + outBytes,
		StationaryBytes: streamBytes,
		WorkingSetBytes: streamBytes + scratchWords*wordBytes,
	}
}

// SplitTiles decomposes a kernel profile into nTiles pipeline tiles for
// SimulateTiles. stationaryBytes (weights or instruction stream) load with
// the first tile; the remaining traffic and all ops spread evenly.
func SplitTiles(p KernelProfile, nTiles int, stationaryBytes int64) []Tile {
	if nTiles < 1 {
		nTiles = 1
	}
	streaming := p.DRAMBytes - stationaryBytes
	if streaming < 0 {
		streaming = 0
	}
	tiles := make([]Tile, nTiles)
	for i := range tiles {
		tiles[i] = Tile{
			LoadBytes:    streaming / int64(nTiles) / 2,
			StoreBytes:   streaming / int64(nTiles) / 2,
			Adds:         p.Adds / int64(nTiles),
			Muls:         p.Muls / int64(nTiles),
			SRAMAccesses: p.SRAMAccesses / int64(nTiles),
		}
	}
	tiles[0].LoadBytes += stationaryBytes
	// Put the integer-division remainders on the last tile so totals match.
	tiles[nTiles-1].Adds += p.Adds % int64(nTiles)
	tiles[nTiles-1].Muls += p.Muls % int64(nTiles)
	tiles[nTiles-1].SRAMAccesses += p.SRAMAccesses % int64(nTiles)
	rem := streaming - (streaming/int64(nTiles))/2*2*int64(nTiles)
	tiles[nTiles-1].StoreBytes += rem
	return tiles
}

// WinogradConvProfile models Winograd F(2x2,3x3) dense execution: the cost
// argument carries the transform+elementwise op counts (see
// baseline.ConvWinograd.Cost); weights cross DRAM in transformed form
// (16 coefficients per 3x3 filter).
func WinogradConvProfile(spec tensor.ConvSpec, n, h, w int, cost ipe.Cost) KernelProfile {
	spec = spec.Normalize()
	oh, ow := spec.OutDims(h, w)
	weightBytes := int64(spec.OutC) * int64(spec.InC) * 16 * wordBytes
	inBytes := int64(n*spec.InC*h*w) * wordBytes
	outBytes := int64(n*spec.OutC*oh*ow) * wordBytes
	return KernelProfile{
		Name:            "winograd",
		Adds:            cost.Adds,
		Muls:            cost.Muls,
		SRAMAccesses:    2 * (cost.Adds + cost.Muls),
		DRAMBytes:       weightBytes + inBytes + outBytes,
		StationaryBytes: weightBytes,
		WorkingSetBytes: weightBytes + int64(spec.InC*4)*int64(w)*wordBytes,
	}
}
