package accel

import "fmt"

// Simulate produces a roofline-style estimate for a kernel profile: the
// kernel takes max(compute-bound, bandwidth-bound) cycles, where refetch
// traffic is charged when the working set exceeds the scratchpad.
func (c Config) Simulate(p KernelProfile) Result {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	dram := c.chargedDRAM(p)
	compute := ceilDiv(p.Ops(), int64(c.PEs))
	mem := int64(float64(dram)/c.BytesPerCycle()) + c.DRAMLatencyCycles
	cycles := compute
	if mem > cycles {
		cycles = mem
	}
	return Result{
		Cycles:        cycles,
		ComputeCycles: compute,
		MemCycles:     mem,
		EnergyPJ:      c.energy(p, dram),
		DRAMBytes:     dram,
	}
}

// chargedDRAM inflates the profile's DRAM traffic by a refetch factor when
// the working set exceeds the scratchpad: each excess multiple of the SRAM
// forces re-streaming of the stationary operand (weights or instruction
// stream). Profiles that do not distinguish a stationary portion
// (StationaryBytes == 0) have all their traffic re-streamed, the
// conservative reading.
func (c Config) chargedDRAM(p KernelProfile) int64 {
	if p.WorkingSetBytes <= c.SRAMBytes {
		return p.DRAMBytes
	}
	refetch := ceilDiv(p.WorkingSetBytes, c.SRAMBytes)
	if p.StationaryBytes > 0 {
		return p.DRAMBytes + (refetch-1)*p.StationaryBytes
	}
	return p.DRAMBytes * refetch
}

func (c Config) energy(p KernelProfile, dram int64) float64 {
	return float64(p.Adds)*c.EnergyAddPJ +
		float64(p.Muls)*c.EnergyMulPJ +
		float64(p.SRAMAccesses)*c.EnergySRAMPJ +
		float64(dram)/4*c.EnergyDRAMPJ
}

// Tile is one unit of the double-buffered execution pipeline: load its
// inputs from DRAM, run its ops, store its outputs.
type Tile struct {
	LoadBytes  int64
	StoreBytes int64
	Adds, Muls int64
	// SRAMAccesses for energy accounting; 0 means estimate as 2·(Adds+Muls).
	SRAMAccesses int64
}

// Ops returns the tile's total scalar op count.
func (t Tile) Ops() int64 { return t.Adds + t.Muls }

// SimulateTiles runs the tile-granular double-buffered model: the load of
// tile i+1 overlaps the compute of tile i, stores overlap the next load,
// and the PEs stall whenever a tile's transfer takes longer than the
// previous tile's compute. This is the "cycle-approximate" path used for
// the latency figures; Simulate is its lower bound.
func (c Config) SimulateTiles(name string, tiles []Tile) Result {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if len(tiles) == 0 {
		return Result{}
	}
	bpc := c.BytesPerCycle()
	xfer := func(bytes int64) int64 {
		if bytes == 0 {
			return 0
		}
		return c.DRAMLatencyCycles + int64(float64(bytes)/bpc)
	}
	var now, computeDone int64
	var res Result
	var totalAdds, totalMuls, totalSRAM int64
	var totalDRAM int64
	for _, t := range tiles {
		// Load starts as soon as the DMA engine is free (sequential DMA),
		// which is when the previous load finished: tracked by `now`.
		loadDone := now + xfer(t.LoadBytes)
		// Compute starts when both the load is done and the PE array is
		// free from the previous tile.
		start := loadDone
		if computeDone > start {
			start = computeDone
		}
		compute := ceilDiv(t.Ops(), int64(c.PEs))
		stall := start - computeDone
		if computeDone == 0 {
			stall = 0 // pipeline fill is not a stall
		}
		computeDone = start + compute
		res.ComputeCycles += compute
		res.StallCycles += stall
		// The store is drained by the DMA engine after the load; model it
		// as occupying the channel after the load completes.
		now = loadDone + xfer(t.StoreBytes)
		totalAdds += t.Adds
		totalMuls += t.Muls
		if t.SRAMAccesses > 0 {
			totalSRAM += t.SRAMAccesses
		} else {
			totalSRAM += 2 * t.Ops()
		}
		totalDRAM += t.LoadBytes + t.StoreBytes
	}
	res.Cycles = computeDone
	if now > res.Cycles {
		res.Cycles = now
	}
	res.MemCycles = res.Cycles - res.ComputeCycles
	if res.MemCycles < 0 {
		res.MemCycles = 0
	}
	res.DRAMBytes = totalDRAM
	res.EnergyPJ = c.energy(KernelProfile{Name: name, Adds: totalAdds, Muls: totalMuls, SRAMAccesses: totalSRAM}, totalDRAM)
	return res
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("accel: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}
