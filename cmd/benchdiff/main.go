// Command benchdiff is the CI perf-regression gate: it compares two
// BENCH_3-format reports (a committed baseline and a fresh run) layer by
// layer and fails when the geometric mean of the per-layer timing ratios
// regresses beyond a threshold.
//
//	benchdiff -baseline BENCH_3.json -current /tmp/bench_current.json
//	benchdiff -baseline BENCH_3.json -current new.json -max-regression 0.10
//
// For each layer present in both reports, the compared timing is the
// runtime metrics attachment's minimum layer latency when both sides carry
// one (full-plan executor time under the recorder; the minimum is the
// sample least disturbed by neighbors, and unlike the histogram quantiles
// it is exact, not power-of-two bucketed), falling back to the
// microbenchmark's compiled_ns_op otherwise. The gate is the geomean of
// current/baseline ratios — single-layer noise cannot trip it, a broad
// slowdown does. Exit status: 0 within threshold, 1 regression, 2 usage or
// I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/benchfmt"
	"repro/internal/report"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(code)
}

func load(path string) *benchfmt.CompiledReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(2, "%v", err)
	}
	var r benchfmt.CompiledReport
	if err := json.Unmarshal(data, &r); err != nil {
		fail(2, "%s: %v", path, err)
	}
	if len(r.Results) == 0 {
		fail(2, "%s: no results (not a BENCH_3-format report?)", path)
	}
	return &r
}

// layerNs picks the timing to diff for one result: the metrics
// attachment's minimum full-plan layer latency when present, else the
// microbenchmark's compiled ns/op.
func layerNs(p *benchfmt.CompiledPair) (ns int64, source string) {
	if p.Metrics != nil && p.Metrics.Latency.MinNs > 0 {
		return p.Metrics.Latency.MinNs, "metrics-min"
	}
	return p.CompiledNsOp, "compiled-ns"
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_3.json", "committed baseline report")
	currentPath := flag.String("current", "", "freshly generated report to compare (required)")
	maxRegression := flag.Float64("max-regression", 0.25,
		"maximum allowed geomean slowdown, e.g. 0.25 = fail when current is >25% slower")
	improve := flag.Bool("improve", false,
		"also fail when the geomean improves beyond -improve-factor: the committed baseline is stale and should be regenerated")
	improveFactor := flag.Float64("improve-factor", 1.5,
		"improvement factor that marks the baseline stale under -improve")
	flag.Parse()
	if *currentPath == "" {
		fail(2, "-current is required")
	}

	base := load(*baselinePath)
	cur := load(*currentPath)

	baseByName := make(map[string]*benchfmt.CompiledPair, len(base.Results))
	for i := range base.Results {
		baseByName[base.Results[i].Name] = &base.Results[i]
	}

	t := report.NewTable(
		fmt.Sprintf("benchdiff: %s vs %s", *currentPath, *baselinePath),
		"layer", "source", "baseline ns", "current ns", "ratio")
	var logSum float64
	var n int
	var missing []string
	var deltas []shapeDelta
	for i := range cur.Results {
		c := &cur.Results[i]
		b, ok := baseByName[c.Name]
		if !ok {
			missing = append(missing, c.Name+" (new)")
			continue
		}
		delete(baseByName, c.Name)
		bNs, bSrc := layerNs(b)
		cNs, cSrc := layerNs(c)
		if bSrc != cSrc {
			// Never compare a full-plan p50 against a microbenchmark ns/op;
			// fall back to the timing both reports carry.
			bNs, cNs = b.CompiledNsOp, c.CompiledNsOp
			bSrc = "compiled-ns"
		}
		if bNs <= 0 || cNs <= 0 {
			missing = append(missing, c.Name+" (unusable timing)")
			continue
		}
		ratio := float64(cNs) / float64(bNs)
		logSum += math.Log(ratio)
		n++
		deltas = append(deltas, shapeDelta{name: c.Name, baseNs: bNs, curNs: cNs, ratio: ratio})
		t.AddRow(c.Name, bSrc,
			report.Count(bNs), report.Count(cNs), fmt.Sprintf("%.3f", ratio))
	}
	for name := range baseByName {
		missing = append(missing, name+" (dropped)")
	}

	if n == 0 {
		fail(2, "no comparable layers between %s and %s", *baselinePath, *currentPath)
	}
	geomean := math.Exp(logSum / float64(n))
	t.Fprint(os.Stdout)
	for _, m := range missing {
		fmt.Printf("  skipped: %s\n", m)
	}
	limit := 1 + *maxRegression
	fmt.Printf("\ngeomean ratio %.3f over %d layers (limit %.3f; >1 means current is slower)\n",
		geomean, n, limit)
	if geomean > limit {
		fmt.Printf("FAIL: geomean regression %.1f%% exceeds %.1f%%\n",
			(geomean-1)*100, *maxRegression*100)
		printDeltas(deltas, false)
		os.Exit(1)
	}
	if *improve && geomean <= 1 / *improveFactor {
		fmt.Printf("FAIL: baseline stale — current is %.2fx faster than %s (geomean), beyond the %.2fx threshold; regenerate BENCH_3.json (make bench-json3) and commit it\n",
			1/geomean, *baselinePath, *improveFactor)
		printDeltas(deltas, true)
		os.Exit(1)
	}
	fmt.Println("OK: within regression budget")
}

// shapeDelta is one layer's baseline/current pair for failure reporting.
type shapeDelta struct {
	name          string
	baseNs, curNs int64
	ratio         float64
}

// printDeltas lists the per-shape deltas behind a failing geomean, most
// extreme first: the slowest regressions when the gate tripped on a
// slowdown, the biggest wins when it tripped on a stale baseline.
func printDeltas(deltas []shapeDelta, improvements bool) {
	sort.Slice(deltas, func(i, j int) bool {
		if improvements {
			return deltas[i].ratio < deltas[j].ratio
		}
		return deltas[i].ratio > deltas[j].ratio
	})
	fmt.Println("per-shape deltas (most extreme first):")
	for _, d := range deltas {
		fmt.Printf("  %-40s %12d -> %12d ns  (%+.1f%%)\n",
			d.name, d.baseNs, d.curNs, (d.ratio-1)*100)
	}
}
