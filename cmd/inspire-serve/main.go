// Command inspire-serve is the network inference front end: it compiles the
// evaluation models once, pools executors behind per-model dynamic
// batchers, and serves JSON inference over HTTP with admission control.
//
//	inspire-serve                          # lenet5 + squeezenet on :8080
//	inspire-serve -addr 127.0.0.1:0        # ephemeral port (printed on stdout)
//	inspire-serve -models lenet5 -force ipe -fuse
//	inspire-serve -max-batch 64 -slo 2ms -queue 4096
//	inspire-serve -autotune -tune-cache tuning.json
//
// With -autotune (auto impl selection only) each model's plan is seeded from
// the -tune-cache file, an online bandit routes a small exploration fraction
// of live traffic through alternate kernel implementations, promotes
// sustained winners, and writes them back to the cache on drain — so a
// restarted server plans the measured winners on its first request. Watch it
// with `inspire-stats -url ...` (the "online autotuner" table).
//
// Endpoints:
//
//	GET  /healthz                    liveness
//	GET  /v1/models                  model listing (shapes, batcher limits)
//	POST /v1/models/{model}/predict  {"data":[...],"shape":[...]} inference
//	GET  /metrics                    live metrics.Snapshot JSON
//
// Responses: 200 on success, 400 on malformed input, 404 unknown model,
// 429 when the admission queue is full (back off and retry), 503 while
// draining during shutdown. SIGINT/SIGTERM drain admitted requests before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/autotune"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
	models := flag.String("models", "lenet5,squeezenet", "comma-separated models to serve")
	force := flag.String("force", "auto",
		"implementation to pin every conv/dense layer to: auto, dense, csr, factorized, ipe, winograd")
	bits := flag.Int("bits", 4, "weight quantization bit-width for encoded implementations")
	fuse := flag.Bool("fuse", false, "compile with the graph-level scheduler (fusion + tiling)")
	maxBatch := flag.Int("max-batch", 32, "flush a batch at this many compiled-batch chunks")
	slo := flag.Duration("slo", 2*time.Millisecond, "max coalescing wait per request (0 = immediate flush)")
	queue := flag.Int("queue", 4096, "admission queue depth per model (full queue = 429)")
	workers := flag.Int("workers", 0, "RunBatch workers per flush (0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", 2, "concurrent RunBatch flushes per model")
	tune := flag.Bool("autotune", false,
		"enable the online autotuner: explore alternate kernel implementations on live traffic and promote measured winners (requires -force auto)")
	tuneCache := flag.String("tune-cache", "",
		"tuning-cache file: seeds plans at startup, receives promoted winners on drain (with -autotune)")
	tuneInterval := flag.Duration("tune-interval", 5*time.Second, "autotuner promotion-poll period")
	tuneExplore := flag.Int("tune-explore", 0,
		"route every Nth execution of a tuned layer through an alternate implementation (0 = default 16)")
	flag.Parse()

	impl, ok := map[string]runtime.Impl{
		"auto": runtime.ImplAuto, "dense": runtime.ImplDense,
		"csr": runtime.ImplCSR, "factorized": runtime.ImplFactorized,
		"ipe": runtime.ImplIPE, "winograd": runtime.ImplWinograd,
	}[*force]
	if !ok {
		fmt.Fprintf(os.Stderr, "inspire-serve: unknown -force %q\n", *force)
		os.Exit(2)
	}

	// Metrics first: batchers and executors resolve the recorder when built.
	runtime.EnableMetrics()

	want := make(map[string]bool)
	for _, name := range strings.Split(*models, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	reg := serve.NewRegistry()
	cfg := serve.Config{
		MaxBatch:    *maxBatch,
		SLO:         *slo,
		QueueDepth:  *queue,
		Workers:     *workers,
		MaxInFlight: *inflight,
	}
	opts := runtime.Options{Force: impl, Bits: *bits, Fuse: *fuse}
	if *tune && impl != runtime.ImplAuto {
		fmt.Fprintf(os.Stderr, "inspire-serve: -autotune requires -force auto (got %s)\n", *force)
		os.Exit(2)
	}
	var store *autotune.Store
	if *tune || *tuneCache != "" {
		// A corrupt, truncated, or legacy-version cache must never stop the
		// server: it just plans from defaults and re-measures.
		store = autotune.LoadStoreOrEmpty(*tuneCache)
		if store.Len() > 0 {
			fmt.Printf("inspire-serve: tuning cache %s: %d entries\n", *tuneCache, store.Len())
		}
		opts.TuningStore = store
	}
	var tuners []*runtime.PlanTuner
	served := 0
	for _, m := range obs.EvalModels() {
		if !want[m.Name] {
			continue
		}
		delete(want, m.Name)
		plan, err := runtime.Compile(m.Graph, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: compiling %s: %v\n", m.Name, err)
			os.Exit(1)
		}
		if _, err := reg.Register(m.Name, plan, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
			os.Exit(1)
		}
		if *tune {
			pt, err := plan.StartTuner(runtime.TunerConfig{
				Policy:    autotune.Policy{ExplorePeriod: *tuneExplore},
				Interval:  *tuneInterval,
				Store:     store,
				StorePath: *tuneCache,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "inspire-serve: autotuning %s: %v\n", m.Name, err)
				os.Exit(1)
			}
			tuners = append(tuners, pt)
		}
		fmt.Printf("inspire-serve: %s compiled (force=%s fuse=%v autotune=%v, input %v)\n",
			m.Name, *force, *fuse, *tune, plan.Graph.In.OutShape)
		served++
	}
	if len(want) > 0 || served == 0 {
		fmt.Fprintf(os.Stderr, "inspire-serve: unknown models %v (have lenet5, squeezenet)\n", want)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Printf("inspire-serve: listening on %s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: writing -addrfile: %v\n", err)
			os.Exit(1)
		}
	}

	srv := &http.Server{Handler: serve.NewHandler(reg)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("inspire-serve: %v: draining\n", s)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Stop accepting connections, then drain the batchers so every admitted
	// request completes before exit.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-serve: shutdown: %v\n", err)
	}
	reg.Close()
	// Batchers are drained: freeze routing at the promoted winners and
	// persist them so the next start plans the tuned configuration.
	for _, pt := range tuners {
		if err := pt.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: saving tuning cache: %v\n", err)
		}
	}
	if len(tuners) > 0 && *tuneCache != "" {
		fmt.Printf("inspire-serve: tuning cache saved to %s (%d entries)\n", *tuneCache, store.Len())
	}
	fmt.Println("inspire-serve: drained, bye")
}
