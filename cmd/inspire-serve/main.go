// Command inspire-serve is the network inference front end: a versioned,
// hot-swappable model registry over compiled plans, per-model dynamic
// batchers with admission control, and JSON inference over HTTP.
//
//	inspire-serve                          # lenet5 + squeezenet on :8080
//	inspire-serve -addr 127.0.0.1:0        # ephemeral port (printed on stdout)
//	inspire-serve -models lenet5 -force ipe -fuse
//	inspire-serve -max-batch 64 -slo 2ms -queue 4096
//	inspire-serve -autotune -tune-cache tuning.json
//	inspire-serve -share-dict=false        # disable shared-dictionary interning
//
// Every model compiles through obs.CompilePlan — the same code path
// inspire-perf measures — so a served plan and a benchmarked plan differ
// only in the explicit options (-force/-fuse/-autotune), never in model
// construction. With -share-dict (the default) all models and all hot-swap
// versions compile through one content-addressed dictionary store:
// identical index-pair programs across models and versions are interned
// once and their compiled emit tables reused, shrinking resident bytes per
// model (watch the "models" table of `inspire-stats -url ...`).
//
// Hot swap: POST /v1/models/{model}/versions with {"seed":N} compiles a new
// weight version while the old one keeps serving, atomically redirects
// traffic, drains the old batcher (zero dropped requests — CI enforces it),
// and releases the old executor pool. Responses carry the serving version,
// so clients can verify monotonicity across swaps.
//
// With -autotune (auto impl selection only) each version's plan is seeded
// from the -tune-cache file, an online bandit routes a small exploration
// fraction of live traffic through alternate kernel implementations,
// promotes sustained winners, and writes them back to the cache on drain.
//
// Endpoints:
//
//	GET  /healthz                     liveness
//	GET  /v1/models                   model listing (shapes, versions, limits)
//	POST /v1/models/{model}/predict   {"data":[...],"shape":[...]} inference
//	POST /v1/models/{model}/versions  {"seed":N} compile + hot-swap
//	GET  /v1/models/{model}/metrics   per-model metrics.Snapshot slice
//	GET  /v1/registry                 residency report (owned/shared bytes)
//	GET  /metrics                     live metrics.Snapshot JSON
//
// Responses: 200 on success, 400 on malformed input, 404 unknown model,
// 429 when the admission queue is full (back off and retry), 503 while
// draining during shutdown. SIGINT/SIGTERM drain admitted requests before
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/autotune"
	"repro/internal/ipe"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/runtime"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
	models := flag.String("models", "lenet5,squeezenet", "comma-separated models to serve")
	force := flag.String("force", "auto",
		"implementation to pin every conv/dense layer to: auto, dense, csr, factorized, ipe, winograd")
	bits := flag.Int("bits", 4, "weight quantization bit-width for encoded implementations")
	fuse := flag.Bool("fuse", false, "compile with the graph-level scheduler (fusion + tiling)")
	shareDict := flag.Bool("share-dict", true,
		"intern index-pair programs through one shared dictionary store across models and versions")
	maxBatch := flag.Int("max-batch", 32, "flush a batch at this many compiled-batch chunks")
	slo := flag.Duration("slo", 2*time.Millisecond, "max coalescing wait per request (0 = immediate flush)")
	queue := flag.Int("queue", 4096, "admission queue depth per model (full queue = 429)")
	workers := flag.Int("workers", 0, "RunBatch workers per flush (0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", 2, "concurrent RunBatch flushes per model")
	poolSize := flag.Duration("pool-resize", 5*time.Second,
		"traffic-driven executor pool resizing period (0 = off)")
	tune := flag.Bool("autotune", false,
		"enable the online autotuner: explore alternate kernel implementations on live traffic and promote measured winners (requires -force auto)")
	tuneCache := flag.String("tune-cache", "",
		"tuning-cache file: seeds plans at startup, receives promoted winners on drain (with -autotune)")
	tuneInterval := flag.Duration("tune-interval", 5*time.Second, "autotuner promotion-poll period")
	tuneExplore := flag.Int("tune-explore", 0,
		"route every Nth execution of a tuned layer through an alternate implementation (0 = default 16)")
	flag.Parse()

	impl, ok := map[string]runtime.Impl{
		"auto": runtime.ImplAuto, "dense": runtime.ImplDense,
		"csr": runtime.ImplCSR, "factorized": runtime.ImplFactorized,
		"ipe": runtime.ImplIPE, "winograd": runtime.ImplWinograd,
	}[*force]
	if !ok {
		fmt.Fprintf(os.Stderr, "inspire-serve: unknown -force %q\n", *force)
		os.Exit(2)
	}

	// Metrics first: batchers and executors resolve the recorder when built.
	runtime.EnableMetrics()

	opts := runtime.Options{Force: impl, Bits: *bits, Fuse: *fuse}
	if *tune && impl != runtime.ImplAuto {
		fmt.Fprintf(os.Stderr, "inspire-serve: -autotune requires -force auto (got %s)\n", *force)
		os.Exit(2)
	}
	var store *autotune.Store
	if *tune || *tuneCache != "" {
		// A corrupt, truncated, or legacy-version cache must never stop the
		// server: it just plans from defaults and re-measures.
		store = autotune.LoadStoreOrEmpty(*tuneCache)
		if store.Len() > 0 {
			fmt.Printf("inspire-serve: tuning cache %s: %d entries\n", *tuneCache, store.Len())
		}
		opts.TuningStore = store
	}
	var dict *ipe.DictStore
	if *shareDict {
		dict = ipe.NewDictStore()
		opts.DictStore = dict
	}

	// Every version of every model — the startup loads below and all later
	// hot swaps — compiles through this one function, so serving and
	// benchmarking (inspire-perf) can never drift apart in model setup.
	var tunersMu sync.Mutex
	var tuners []*runtime.PlanTuner
	compile := func(model string, seed uint64) (*runtime.Plan, error) {
		plan, err := obs.CompilePlan(model, seed, opts)
		if err != nil {
			return nil, err
		}
		if *tune {
			pt, err := plan.StartTuner(runtime.TunerConfig{
				Policy:    autotune.Policy{ExplorePeriod: *tuneExplore},
				Interval:  *tuneInterval,
				Store:     store,
				StorePath: *tuneCache,
			})
			if err != nil {
				return nil, fmt.Errorf("autotuning %s: %w", model, err)
			}
			tunersMu.Lock()
			tuners = append(tuners, pt)
			tunersMu.Unlock()
		}
		return plan, nil
	}

	reg, err := registry.New(registry.Options{
		Compile: compile,
		Serve: serve.Config{
			MaxBatch:    *maxBatch,
			SLO:         *slo,
			QueueDepth:  *queue,
			Workers:     *workers,
			MaxInFlight: *inflight,
		},
		DictStore: dict,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
		os.Exit(1)
	}

	served := 0
	for _, name := range strings.Split(*models, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		v, err := reg.Add(name, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("inspire-serve: %s v%d compiled (force=%s fuse=%v autotune=%v share-dict=%v, input %v)\n",
			name, v.Version, *force, *fuse, *tune, *shareDict, v.Plan.Graph.In.OutShape)
		served++
	}
	if served == 0 {
		fmt.Fprintln(os.Stderr, "inspire-serve: no models")
		os.Exit(2)
	}
	if dict != nil {
		st := dict.Stats()
		fmt.Printf("inspire-serve: shared dict: %d unique programs, %d hits, %d bytes saved\n",
			st.UniquePrograms, st.ProgramHits+st.DictHits, st.SavedBytes)
	}
	if *poolSize > 0 {
		reg.StartPoolSizer(*poolSize)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Printf("inspire-serve: listening on %s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: writing -addrfile: %v\n", err)
			os.Exit(1)
		}
	}

	srv := &http.Server{Handler: serve.NewHandler(reg)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("inspire-serve: %v: draining\n", s)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "inspire-serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Stop accepting connections, then drain the batchers so every admitted
	// request completes before exit.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-serve: shutdown: %v\n", err)
	}
	reg.Close()
	// Batchers are drained: freeze routing at the promoted winners and
	// persist them so the next start plans the tuned configuration.
	tunersMu.Lock()
	for _, pt := range tuners {
		if err := pt.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-serve: saving tuning cache: %v\n", err)
		}
	}
	n := len(tuners)
	tunersMu.Unlock()
	if n > 0 && *tuneCache != "" {
		fmt.Printf("inspire-serve: tuning cache saved to %s (%d entries)\n", *tuneCache, store.Len())
	}
	fmt.Println("inspire-serve: drained, bye")
}
