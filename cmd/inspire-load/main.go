// Command inspire-load drives a running inspire-serve instance with
// closed-loop concurrent clients and reports sustained throughput and tail
// latency per endpoint, plus the server-side batching evidence (mean
// coalesced batch size) pulled from /metrics after the run.
//
//	inspire-load -url http://127.0.0.1:8080                      # 64 clients, 5s, lenet5
//	inspire-load -models lenet5,squeezenet -clients 1000 -duration 10s
//	inspire-load -clients 200 -items 4 -json
//	inspire-load -fail   # exit 1 on any dropped (429) or failed request
//	inspire-load -swap-model lenet5 -swap-seed 2   # hot-swap mid-run
//
// With several -models the client count is split evenly across them and
// the endpoints run concurrently (one report per endpoint). Every 200
// response body is verified: it must name the requested model (mis-routes
// are counted) and each closed-loop client's observed version sequence must
// be non-decreasing across hot swaps. With -swap-model the driver POSTs a
// version load for that model halfway through the run (or at -swap-after),
// so a single invocation proves drain-without-drops under swap; -fail then
// also trips on mis-routes, version regressions, or a failed swap.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "inspire-serve base URL")
	models := flag.String("models", "lenet5", "comma-separated endpoints to drive")
	clients := flag.Int("clients", 64, "total concurrent closed-loop clients (split across models)")
	duration := flag.Duration("duration", 5*time.Second, "how long to fire")
	items := flag.Int("items", 1, "request batch size in compiled-batch chunks")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	jsonOut := flag.Bool("json", false, "emit the reports as JSON instead of a table")
	fail := flag.Bool("fail", false,
		"exit non-zero on any dropped (429) or failed request, mis-route, version regression, or failed swap")
	swapModel := flag.String("swap-model", "", "hot-swap this model mid-run (POST a new version while firing)")
	swapSeed := flag.Uint64("swap-seed", 1, "weight seed for the swapped-in version")
	swapAfter := flag.Duration("swap-after", 0, "when to fire the swap (0 = halfway through -duration)")
	flag.Parse()

	var names []string
	for _, n := range strings.Split(*models, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "inspire-load: no models")
		os.Exit(2)
	}
	per := *clients / len(names)
	if per < 1 {
		per = 1
	}

	reports := make([]*serve.LoadReport, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			cfg := serve.LoadConfig{
				URL:      *url,
				Model:    name,
				Clients:  per,
				Duration: *duration,
				Items:    *items,
				Timeout:  *timeout,
			}
			// The first endpoint's run drives the swap so it fires exactly
			// once even when several models run concurrently.
			if i == 0 && *swapModel != "" {
				cfg.SwapModel = *swapModel
				cfg.SwapSeed = *swapSeed
				cfg.SwapAfter = *swapAfter
			}
			reports[i], errs[i] = serve.RunLoad(cfg)
		}(i, name)
	}
	wg.Wait()

	bad := false
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-load: %s: %v\n", names[i], err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-load: %v\n", err)
			os.Exit(1)
		}
	} else {
		t := report.NewTable(fmt.Sprintf("load (%d clients, %v)", per*len(names), *duration),
			"endpoint", "clients", "ok", "dropped", "failed", "misrouted",
			"versions", "qps", "p50", "p90", "p99", "max", "mean batch", "srv p99")
		for _, r := range reports {
			t.AddRow(
				r.Model,
				report.Count(int64(r.Clients)),
				report.Count(r.OK),
				report.Count(r.Dropped),
				report.Count(r.Failed),
				report.Count(r.MisRouted),
				fmt.Sprintf("v%d-v%d", r.MinVersion, r.MaxVersion),
				report.Num(r.QPS),
				r.P50.Round(time.Microsecond).String(),
				r.P90.Round(time.Microsecond).String(),
				r.P99.Round(time.Microsecond).String(),
				r.MaxLat.Round(time.Microsecond).String(),
				report.Num(r.Endpoint.MeanBatch),
				time.Duration(r.Endpoint.Latency.P99Ns).Round(time.Microsecond).String(),
			)
		}
		t.Fprint(os.Stdout)
		if *swapModel != "" {
			r := reports[0]
			fmt.Printf("swap: %s -> v%d (status %d)\n", *swapModel, r.SwapVersion, r.SwapStatus)
		}
	}

	if *fail {
		for _, r := range reports {
			if r.Dropped > 0 || r.Failed > 0 || r.OK == 0 ||
				r.MisRouted > 0 || r.VersionRegressions > 0 {
				fmt.Fprintf(os.Stderr,
					"inspire-load: %s: ok=%d dropped=%d failed=%d misrouted=%d regressions=%d\n",
					r.Model, r.OK, r.Dropped, r.Failed, r.MisRouted, r.VersionRegressions)
				os.Exit(1)
			}
		}
		if *swapModel != "" && reports[0].SwapStatus != 200 {
			fmt.Fprintf(os.Stderr, "inspire-load: swap %s failed with status %d\n",
				*swapModel, reports[0].SwapStatus)
			os.Exit(1)
		}
	}
}
