// Command inspire-stats runs the evaluation models (LeNet-5 and the 32x32
// SqueezeNet) under the runtime metrics recorder and prints the
// observability breakdown: one table per model with each layer's chosen
// kernel and latency distribution, plus worker-pool and executor/arena
// telemetry.
//
//	inspire-stats                  # auto-selected kernels, aligned tables
//	inspire-stats -force ipe       # pin every conv/dense layer to one family
//	inspire-stats -fuse            # graph scheduler on: adds per-region tables
//	inspire-stats -model lenet5    # single model
//	inspire-stats -json            # machine-readable metrics.Snapshot dump
//	inspire-stats -runs 20         # more samples per layer series
//
// With -url it skips the local run and instead pulls the live snapshot from
// a running inspire-serve instance's /metrics endpoint, adding the serving
// table (per-endpoint admission counters, batch coalescing, QPS, latency
// percentiles), the hot-swap registry's per-model table (serving version,
// swaps, resident bytes after shared-dictionary interning, QPS/GB density,
// and the models × QPS per GB capacity figure), and the shared dictionary
// store's dedup ledger above the usual layer/pool/executor breakdown:
//
//	inspire-stats -url http://127.0.0.1:8080
//	inspire-stats -url http://127.0.0.1:8080 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/serve"
)

func main() {
	force := flag.String("force", "auto",
		"implementation to pin every conv/dense layer to: auto, dense, csr, factorized, ipe, winograd")
	bits := flag.Int("bits", 4, "weight quantization bit-width for encoded implementations")
	fuse := flag.Bool("fuse", false,
		"compile with the graph-level scheduler (operator fusion + tiling) and print per-region tables")
	runs := flag.Int("runs", 5, "inference runs per model (samples per layer series)")
	model := flag.String("model", "", "restrict to one model: lenet5 or squeezenet (default both)")
	jsonOut := flag.Bool("json", false, "dump the raw metrics.Snapshot as JSON instead of tables")
	url := flag.String("url", "", "fetch the snapshot from a running inspire-serve's /metrics instead of running locally")
	flag.Parse()

	if *url != "" {
		s, err := serve.FetchSnapshot(*url, 10*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-stats: fetching %s/metrics: %v\n", *url, err)
			os.Exit(1)
		}
		renderLive(s, *jsonOut)
		return
	}

	impl, ok := map[string]runtime.Impl{
		"auto": runtime.ImplAuto, "dense": runtime.ImplDense,
		"csr": runtime.ImplCSR, "factorized": runtime.ImplFactorized,
		"ipe": runtime.ImplIPE, "winograd": runtime.ImplWinograd,
	}[*force]
	if !ok {
		fmt.Fprintf(os.Stderr, "inspire-stats: unknown -force %q\n", *force)
		os.Exit(2)
	}

	models := obs.EvalModels()
	if *model != "" {
		kept := models[:0]
		for _, m := range models {
			if m.Name == *model {
				kept = append(kept, m)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "inspire-stats: unknown -model %q\n", *model)
			os.Exit(2)
		}
		models = kept
	}

	s, err := obs.Meter(models, runtime.Options{Force: impl, Bits: *bits, Fuse: *fuse}, *runs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-stats: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		if err := s.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-stats: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, m := range models {
		obs.LayerTable(fmt.Sprintf("%s (force=%s, runs=%d)", m.Name, *force, *runs),
			s, m.Name+"/").Fprint(os.Stdout)
		fmt.Println()
		if *fuse {
			obs.RegionTable(m.Name+" fused regions", s, m.Name+"/").Fprint(os.Stdout)
			fmt.Println()
		}
	}
	obs.PoolTable(s).Fprint(os.Stdout)
	fmt.Println()
	obs.ExecTable(s).Fprint(os.Stdout)
}

// renderLive prints a snapshot fetched from a running server: the serving
// endpoints first (that's what a live process adds over a local meter run),
// then every layer series it has accumulated, then pool and executor
// telemetry.
func renderLive(s metrics.Snapshot, jsonOut bool) {
	if jsonOut {
		if err := s.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-stats: %v\n", err)
			os.Exit(1)
		}
		return
	}
	obs.EndpointTable("serving endpoints", s).Fprint(os.Stdout)
	fmt.Println()
	if len(s.Models) > 0 {
		obs.ModelTable("models (hot-swap registry)", s).Fprint(os.Stdout)
		if cap := obs.Capacity(s); cap > 0 {
			fmt.Printf("serving capacity: %.1f models x QPS per GB resident\n", cap)
		}
		fmt.Println()
	}
	if s.SharedDict != nil {
		obs.SharedDictTable(s).Fprint(os.Stdout)
		fmt.Println()
	}
	if len(s.Autotune) > 0 {
		obs.AutotuneTable("online autotuner", s, "").Fprint(os.Stdout)
		fmt.Println()
	}
	obs.LayerTable("layers", s, "").Fprint(os.Stdout)
	fmt.Println()
	obs.PoolTable(s).Fprint(os.Stdout)
	fmt.Println()
	obs.ExecTable(s).Fprint(os.Stdout)
}
