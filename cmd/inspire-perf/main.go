// Command inspire-perf measures the serving-path wall time in three modes:
//
//	inspire-perf                           > BENCH_2.json  # serial vs intra-op sharded
//	inspire-perf -compiled                 > BENCH_3.json  # interpreted vs compiled IPE
//	inspire-perf -compiled -metrics -sched > BENCH_3.json  # ...plus per-layer metrics and
//	                                                       # the fused-scheduler comparison
//	inspire-perf -metrics                                  # human-readable per-layer tables
//	inspire-perf -metrics -fuse                            # ...with per-region scheduler tables
//
// The default mode times each hot kernel and the end-to-end executor once
// serial (parallelism 1) and once sharded over the process-wide worker
// pool. The -compiled mode walks the LeNet-5 and SqueezeNet graphs,
// index-pair encodes every conv/dense layer, and times the interpreted
// Program executors against their compiled (flat, slot-compacted) forms —
// outputs are bit-identical by construction, so the report is purely a
// speed and scratch-footprint comparison.
//
// With -metrics, -compiled additionally runs the full forced-IPE plans
// under the runtime metrics recorder (after all timing loops, so nothing is
// perturbed) and attaches each layer's latency/kernel snapshot to its
// result plus the whole-process snapshot to the report; cmd/benchdiff and
// the CI bench-check gate diff those attachments. With -sched, -compiled
// also attaches the graph-scheduler section: each evaluation model compiled
// fused and unfused (forced IPE, bit-identical outputs), their interleaved
// end-to-end wall times, arena high-water marks, modeled DRAM traffic, and
// the fused plan's per-region decisions. -metrics alone prints the
// per-layer breakdown as aligned tables under automatic kernel selection
// (-fuse adds the per-region scheduler tables). -quick drops the timing
// repetitions from three to one for CI smoke runs.
//
// Both JSON reports record GOMAXPROCS/NumCPU: on a single-core runner the
// sharded numbers demonstrate bounded overhead (the pool runs shards
// inline when no helper tokens are free), while multi-core runners show
// the speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	goruntime "runtime"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/graph"
	"repro/internal/ipe"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// timeReps is how many times each side of a measurement is repeated (the
// minimum is kept); -quick lowers it to 1.
var timeReps = 3

// meterRuns is how many times each model runs when collecting metrics
// attachments or tables — enough for stable p50s without noticeable cost.
const meterRuns = 5

func bench(name string, shards int, serial, par func()) benchfmt.Pair {
	s := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial()
		}
	})
	p := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par()
		}
	})
	sn, pn := s.NsPerOp(), p.NsPerOp()
	sp := 0.0
	if pn > 0 {
		sp = float64(sn) / float64(pn)
	}
	return benchfmt.Pair{Name: name, SerialNsOp: sn, ParNsOp: pn, Speedup: sp, Shards: shards}
}

func main() {
	compiled := flag.Bool("compiled", false,
		"emit BENCH_3: interpreted-vs-compiled IPE executor timings over the LeNet/SqueezeNet layers")
	withMetrics := flag.Bool("metrics", false,
		"with -compiled: attach per-layer runtime metrics to the JSON report; alone: print per-layer metrics tables")
	withSched := flag.Bool("sched", false,
		"with -compiled: attach the fused-vs-unfused graph-scheduler comparison to the JSON report")
	fuse := flag.Bool("fuse", false,
		"with -metrics alone: compile with the graph scheduler and print per-region tables")
	quick := flag.Bool("quick", false,
		"one timing repetition per measurement instead of three (CI bench-check mode)")
	flag.Parse()
	if *quick {
		timeReps = 1
	}
	switch {
	case *compiled:
		benchCompiled(*withMetrics, *withSched)
	case *withMetrics:
		if err := printMetrics(os.Stdout, *fuse); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-perf: %v\n", err)
			os.Exit(1)
		}
	default:
		benchSharding()
	}
}

// printMetrics runs the evaluation models under the metrics recorder with
// automatic kernel selection and prints the per-layer, pool, and executor
// breakdowns as aligned tables. With fuse, the plans compile under the
// graph scheduler and each model also gets its per-region table.
func printMetrics(w io.Writer, fuse bool) error {
	models := obs.EvalModels()
	s, err := obs.Meter(models, runtime.Options{Fuse: fuse}, meterRuns)
	if err != nil {
		return err
	}
	for _, m := range models {
		obs.LayerTable(m.Name, s, m.Name+"/").Fprint(w)
		fmt.Fprintln(w)
		if fuse {
			obs.RegionTable(m.Name+" fused regions", s, m.Name+"/").Fprint(w)
			fmt.Fprintln(w)
		}
	}
	obs.PoolTable(s).Fprint(w)
	fmt.Fprintln(w)
	obs.ExecTable(s).Fprint(w)
	return nil
}

// benchSharding is the BENCH_2 report: serial vs intra-op sharded.
func benchSharding() {
	shards := goruntime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2 // still exercise the sharded code path on one core
	}
	par := tensor.NewPar(parallel.Shared(), shards)
	var results []benchfmt.Pair

	// GEMM over the im2col row-block path.
	const m, k, n = 192, 256, 192
	a := tensor.New(m, k)
	tensor.FillGaussian(a, tensor.NewRNG(1), 1)
	b := tensor.New(k, n)
	tensor.FillGaussian(b, tensor.NewRNG(2), 1)
	c := make([]float32, m*n)
	results = append(results, bench(fmt.Sprintf("gemm_%dx%dx%d", m, k, n), shards,
		func() { tensor.Gemm(a.Data(), b.Data(), c, m, k, n) },
		func() { tensor.GemmPar(a.Data(), b.Data(), c, m, k, n, par); par.Reset() },
	))

	// Direct convolution, per-(batch, out-channel) sharding.
	spec := tensor.ConvSpec{InC: 16, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cin := tensor.New(2, spec.InC, 32, 32)
	tensor.FillGaussian(cin, tensor.NewRNG(3), 1)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(4), 0.1)
	bias := tensor.New(spec.OutC)
	tensor.FillGaussian(bias, tensor.NewRNG(5), 0.1)
	oh, ow := spec.OutDims(32, 32)
	cdst := tensor.New(2, spec.OutC, oh, ow)
	results = append(results, bench("conv2d_direct_16x32_3x3_32x32", shards,
		func() { tensor.Conv2DInto(cdst, cin, w, bias, spec) },
		func() { tensor.Conv2DIntoPar(cdst, cin, w, bias, spec, par); par.Reset() },
	))

	// IPE matrix execution, colBlock-aligned column sharding.
	qw := tensor.New(64, 144)
	tensor.FillGaussian(qw, tensor.NewRNG(6), 0.1)
	prog, _, err := ipe.Encode(quant.Quantize(qw, 4, quant.PerTensor), ipe.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: encode: %v\n", err)
		os.Exit(1)
	}
	const pTotal = 1024
	cols := tensor.New(prog.K, pTotal)
	tensor.FillGaussian(cols, tensor.NewRNG(7), 1)
	idst := make([]float32, prog.M*pTotal)
	var is tensor.Scratch
	results = append(results, bench("ipe_matrix_64x144_p1024", shards,
		func() { prog.ExecuteMatrixInto(idst, cols.Data(), pTotal, &is) },
		func() { prog.ExecuteMatrixIntoPar(idst, cols.Data(), pTotal, par); par.Reset() },
	))

	// End-to-end executor on LeNet-5 with the paper's encoding forced,
	// compiled through the same path inspire-serve serves it from.
	plan, err := obs.CompilePlan("lenet5", 0, runtime.Options{Force: runtime.ImplIPE, Bits: 4})
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: %v\n", err)
		os.Exit(1)
	}
	in := tensor.New(1, 1, 28, 28)
	tensor.FillGaussian(in, tensor.NewRNG(8), 1)
	eSerial := plan.NewExecutor()
	eSerial.SetParallelism(1)
	ePar := plan.NewExecutor()
	ePar.SetParallelism(shards)
	if _, err := eSerial.Run(in); err != nil { // warm both arenas
		fmt.Fprintf(os.Stderr, "inspire-perf: run: %v\n", err)
		os.Exit(1)
	}
	if _, err := ePar.Run(in); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: run: %v\n", err)
		os.Exit(1)
	}
	results = append(results, bench("executor_lenet5_ipe", shards,
		func() { eSerial.Run(in) },
		func() { ePar.Run(in) },
	))

	// RunBatch: inter-chunk workers composed with intra-op shards.
	big := tensor.New(8, 1, 28, 28)
	tensor.FillGaussian(big, tensor.NewRNG(10), 1)
	results = append(results, bench("runbatch_lenet5_ipe_b8", shards,
		func() { plan.RunBatch(big, 1) },
		func() { plan.RunBatch(big, 0) },
	))

	out := benchfmt.ShardingReport{
		Benchmark:  "BENCH_2: intra-op worker-pool sharding (serial vs sharded, bit-identical outputs)",
		GOOS:       goruntime.GOOS,
		GOARCH:     goruntime.GOARCH,
		NumCPU:     goruntime.NumCPU(),
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		Note: "speedup = serial_ns_op / parallel_ns_op; on a single-core runner the pool " +
			"degrades to inline execution, so ~1.0 demonstrates bounded sharding overhead " +
			"rather than a parallel speedup",
		Results: results,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: %v\n", err)
		os.Exit(1)
	}
}

// timePair runs the two closures under testing.Benchmark and fills the
// timing fields of a CompiledPair built from prog's compiled form. The two
// sides are interleaved timeReps times and the minimum ns/op of each is
// kept — the minimum is the run least disturbed by neighbors on a shared
// box, and interleaving keeps slow machine phases from landing on one side
// only.
func timePair(name, kind string, prog *ipe.Program, cols int, interp, compiled func()) benchfmt.CompiledPair {
	c := prog.Compiled()
	run := func(f func()) int64 {
		return testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				f()
			}
		}).NsPerOp()
	}
	var in, cn int64
	for rep := 0; rep < timeReps; rep++ {
		if i := run(interp); rep == 0 || i < in {
			in = i
		}
		if cc := run(compiled); rep == 0 || cc < cn {
			cn = cc
		}
	}
	sp := 0.0
	if cn > 0 {
		sp = float64(in) / float64(cn)
	}
	return benchfmt.CompiledPair{
		Name: name, Kind: kind,
		InterpNsOp: in, CompiledNsOp: cn, Speedup: sp,
		K: prog.K, M: prog.M, Cols: cols,
		NumSymbols: prog.NumSymbols(), NumSlots: c.NumSlots,
		Footprint: float64(prog.K+c.NumSlots) / float64(prog.NumSymbols()),
	}
}

// benchSched measures the graph-level scheduler on the evaluation models:
// each compiles twice under forced IPE — once unfused, once with
// Options.Fuse — and the two executors' end-to-end wall times are
// interleaved timeReps times, keeping the minimum of each side. Outputs
// are bit-identical by construction (the conformance sweep enforces it),
// so the section compares memory and latency only: arena high-water marks,
// modeled whole-network DRAM traffic, and the fused plan's per-region
// decisions.
func benchSched() (*benchfmt.SchedulerReport, error) {
	var results []benchfmt.SchedPair
	for _, m := range obs.EvalModels() {
		gUnfused, gFused := m.Graph, m.Graph.Clone()
		opts := runtime.Options{Force: runtime.ImplIPE, Bits: 4}
		unfused, err := runtime.Compile(gUnfused, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: compile unfused: %w", m.Name, err)
		}
		opts.Fuse = true
		fused, err := runtime.Compile(gFused, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: compile fused: %w", m.Name, err)
		}

		eu, ef := unfused.NewExecutor(), fused.NewExecutor()
		eu.SetParallelism(0)
		ef.SetParallelism(0)
		if _, err := eu.Run(m.Input); err != nil { // warm both arenas
			return nil, fmt.Errorf("%s: unfused run: %w", m.Name, err)
		}
		if _, err := ef.Run(m.Input); err != nil {
			return nil, fmt.Errorf("%s: fused run: %w", m.Name, err)
		}
		time := func(e *runtime.Executor) int64 {
			return testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.Run(m.Input)
				}
			}).NsPerOp()
		}
		var un, fn int64
		for rep := 0; rep < timeReps; rep++ {
			if u := time(eu); rep == 0 || u < un {
				un = u
			}
			if f := time(ef); rep == 0 || f < fn {
				fn = f
			}
		}

		pair := benchfmt.SchedPair{
			Name:              m.Name,
			UnfusedNsOp:       un,
			FusedNsOp:         fn,
			UnfusedArenaBytes: unfused.ArenaBytes,
			FusedArenaBytes:   fused.ArenaBytes,
			UnfusedDRAMBytes:  unfused.Total.DRAMBytes,
			FusedDRAMBytes:    fused.Total.DRAMBytes,
		}
		if fn > 0 {
			pair.Speedup = float64(un) / float64(fn)
		}
		if unfused.ArenaBytes > 0 {
			pair.ArenaReduction = 1 - float64(fused.ArenaBytes)/float64(unfused.ArenaBytes)
		}
		if unfused.Total.DRAMBytes > 0 {
			pair.DRAMReduction = 1 - float64(fused.Total.DRAMBytes)/float64(unfused.Total.DRAMBytes)
		}
		for _, rp := range fused.Regions {
			sr := benchfmt.SchedRegion{
				Name:             rp.Name,
				Mode:             rp.Mode(),
				RetainedBytes:    rp.RetainedBytes,
				SpilledBytes:     rp.SpilledBytes,
				FusedDRAMBytes:   rp.FusedDRAMBytes,
				UnfusedDRAMBytes: rp.UnfusedDRAMBytes,
			}
			if rp.Tiled {
				sr.TilesPerImage = rp.Tile.TilesPerImage
			}
			pair.Regions = append(pair.Regions, sr)
		}
		results = append(results, pair)
	}

	var sum float64
	var n int
	for _, r := range results {
		if r.Speedup > 0 {
			sum += math.Log(r.Speedup)
			n++
		}
	}
	rep := &benchfmt.SchedulerReport{
		Note: "fused (Options.Fuse) vs unfused plans under forced IPE, bit-identical outputs; " +
			"speedup = unfused_ns_op / fused_ns_op end-to-end at default parallelism; " +
			"arena bytes are each plan's activation high-water mark; dram bytes are the " +
			"modeled whole-network off-chip traffic; regions list the fused plan's " +
			"per-region scheduler decisions",
		Results: results,
	}
	if n > 0 {
		rep.GeomeanSpeedup = math.Exp(sum / float64(n))
	}
	return rep, nil
}

// benchCompiled is the BENCH_3 report: for every conv/dense layer of the
// LeNet-5 and SqueezeNet evaluation models (deduplicated by geometry), the
// interpreted matrix/vector executor against the compiled one on the
// layer's real serving shape. With withMetrics, the full forced-IPE plans
// then run under the metrics recorder and each result gains its layer's
// runtime snapshot; with withSched, the report also carries the
// fused-vs-unfused graph-scheduler section.
func benchCompiled(withMetrics, withSched bool) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "inspire-perf: %v\n", err)
		os.Exit(1)
	}
	// The evaluation models come from the same constructor the serving
	// registry compiles from (obs.GraphByName under the default seeds), so
	// the layers timed here are byte-for-byte the layers inspire-serve runs.
	models := obs.EvalModels()
	var results []benchfmt.CompiledPair
	seen := make(map[string]bool)
	rng := tensor.NewRNG(77)
	for _, m := range models {
		if err := m.Graph.InferShapes(); err != nil {
			fail(err)
		}
		for _, n := range m.Graph.Topo() {
			switch n.Kind {
			case graph.OpConv:
				spec := n.Attrs.Conv
				p := n.OutShape[2] * n.OutShape[3] // im2col columns, batch 1
				key := fmt.Sprintf("conv/%d/%d/%d", spec.InC*spec.KH*spec.KW/spec.Groups, spec.OutC/spec.Groups, p)
				if seen[key] {
					continue
				}
				seen[key] = true
				l, _, err := ipe.EncodeConv(n.Param("weight"), n.Param("bias"), spec, 4, quant.PerTensor, ipe.DefaultConfig())
				if err != nil {
					fail(fmt.Errorf("%s/%s: %w", m.Name, n.Name, err))
				}
				prog := l.Programs[0]
				cols := make([]float32, prog.K*p)
				for i := range cols {
					cols[i] = rng.Float32() - 0.5
				}
				dst := make([]float32, prog.M*p)
				var si, sc tensor.Scratch
				c := prog.Compiled()
				results = append(results, timePair(m.Name+"/"+n.Name, "matrix", prog, p,
					func() { prog.ExecuteMatrixInto(dst, cols, p, &si) },
					func() { c.ExecuteMatrixInto(dst, cols, p, &sc) },
				))
			case graph.OpDense:
				w := n.Param("weight")
				key := fmt.Sprintf("dense/%d/%d", w.Dim(0), w.Dim(1))
				if seen[key] {
					continue
				}
				seen[key] = true
				l, _, err := ipe.EncodeDense(w, n.Param("bias"), 4, quant.PerTensor, ipe.DefaultConfig())
				if err != nil {
					fail(fmt.Errorf("%s/%s: %w", m.Name, n.Name, err))
				}
				prog := l.Program
				x := make([]float32, prog.K)
				for i := range x {
					x[i] = rng.Float32() - 0.5
				}
				y := make([]float32, prog.M)
				c := prog.Compiled()
				scratch := make([]float32, prog.NumSymbols())
				cScratch := make([]float32, c.ScratchLen())
				results = append(results, timePair(m.Name+"/"+n.Name, "vector", prog, 1,
					func() { prog.ExecuteScratch(x, y, scratch) },
					func() { c.ExecuteScratch(x, y, cScratch) },
				))
			}
		}
	}

	// The scheduler section times its own executor runs, so it comes
	// before the metrics attachments but after the kernel timing loops.
	var schedRep *benchfmt.SchedulerReport
	if withSched {
		sr, err := benchSched()
		if err != nil {
			fail(err)
		}
		schedRep = sr
	}

	// Metrics attachments come after every timing loop so the recorder's
	// (already tiny) overhead cannot perturb the measurements above.
	var snap *metrics.Snapshot
	if withMetrics {
		s, err := obs.Meter(obs.EvalModels(),
			runtime.Options{Force: runtime.ImplIPE, Bits: 4}, meterRuns)
		if err != nil {
			fail(err)
		}
		byName := make(map[string]*metrics.LayerSnapshot, len(s.Layers))
		for i := range s.Layers {
			byName[s.Layers[i].Name] = &s.Layers[i]
		}
		for i := range results {
			results[i].Metrics = byName[results[i].Name]
		}
		snap = &s
	}

	geomean := func(kind string) float64 {
		var sum float64
		var n int
		for _, r := range results {
			if (kind == "" || r.Kind == kind) && r.Speedup > 0 {
				sum += math.Log(r.Speedup)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return math.Exp(sum / float64(n))
	}
	out := benchfmt.CompiledReport{
		Benchmark:  "BENCH_3: interpreted vs compiled IPE execution (bit-identical outputs)",
		GOOS:       goruntime.GOOS,
		GOARCH:     goruntime.GOARCH,
		NumCPU:     goruntime.NumCPU(),
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		Note: "speedup = interpreted_ns_op / compiled_ns_op on each layer's real serving shape " +
			"(batch-1 im2col columns for convs, single vectors for dense); scratch_footprint = " +
			"(K + NumSlots) / NumSymbols, the compiled working set relative to the interpreter's " +
			"one-word-per-symbol scratchpad; layers deduplicated by geometry; with -metrics, " +
			"results carry per-layer runtime metrics from full forced-IPE plan runs",
		GeomeanMatrixSpeedup: geomean("matrix"),
		GeomeanSpeedup:       geomean(""),
		Results:              results,
		MetricsSnapshot:      snap,
		Scheduler:            schedRep,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}
