// Command inspire-perf measures the wall-time effect of intra-op kernel
// sharding: each hot kernel and the end-to-end executor run once serial
// (parallelism 1) and once sharded over the process-wide worker pool, and
// the paired timings are emitted as JSON (see BENCH_2.json).
//
// Usage:
//
//	inspire-perf > BENCH_2.json
//
// The report records GOMAXPROCS/NumCPU: on a single-core runner the sharded
// numbers demonstrate bounded overhead (the pool runs shards inline when no
// helper tokens are free), while multi-core runners show the speedup.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"testing"

	"repro/internal/ipe"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

type pair struct {
	Name       string  `json:"name"`
	SerialNsOp int64   `json:"serial_ns_op"`
	ParNsOp    int64   `json:"parallel_ns_op"`
	Speedup    float64 `json:"speedup"`
	Shards     int     `json:"shards"`
}

type reportJSON struct {
	Benchmark  string `json:"benchmark"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	Results    []pair `json:"results"`
}

func bench(name string, shards int, serial, par func()) pair {
	s := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial()
		}
	})
	p := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par()
		}
	})
	sn, pn := s.NsPerOp(), p.NsPerOp()
	sp := 0.0
	if pn > 0 {
		sp = float64(sn) / float64(pn)
	}
	return pair{Name: name, SerialNsOp: sn, ParNsOp: pn, Speedup: sp, Shards: shards}
}

func main() {
	shards := goruntime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2 // still exercise the sharded code path on one core
	}
	par := tensor.NewPar(parallel.Shared(), shards)
	var results []pair

	// GEMM over the im2col row-block path.
	const m, k, n = 192, 256, 192
	a := tensor.New(m, k)
	tensor.FillGaussian(a, tensor.NewRNG(1), 1)
	b := tensor.New(k, n)
	tensor.FillGaussian(b, tensor.NewRNG(2), 1)
	c := make([]float32, m*n)
	results = append(results, bench(fmt.Sprintf("gemm_%dx%dx%d", m, k, n), shards,
		func() { tensor.Gemm(a.Data(), b.Data(), c, m, k, n) },
		func() { tensor.GemmPar(a.Data(), b.Data(), c, m, k, n, par); par.Reset() },
	))

	// Direct convolution, per-(batch, out-channel) sharding.
	spec := tensor.ConvSpec{InC: 16, OutC: 32, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cin := tensor.New(2, spec.InC, 32, 32)
	tensor.FillGaussian(cin, tensor.NewRNG(3), 1)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, tensor.NewRNG(4), 0.1)
	bias := tensor.New(spec.OutC)
	tensor.FillGaussian(bias, tensor.NewRNG(5), 0.1)
	oh, ow := spec.OutDims(32, 32)
	cdst := tensor.New(2, spec.OutC, oh, ow)
	results = append(results, bench("conv2d_direct_16x32_3x3_32x32", shards,
		func() { tensor.Conv2DInto(cdst, cin, w, bias, spec) },
		func() { tensor.Conv2DIntoPar(cdst, cin, w, bias, spec, par); par.Reset() },
	))

	// IPE matrix execution, colBlock-aligned column sharding.
	qw := tensor.New(64, 144)
	tensor.FillGaussian(qw, tensor.NewRNG(6), 0.1)
	prog, _, err := ipe.Encode(quant.Quantize(qw, 4, quant.PerTensor), ipe.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: encode: %v\n", err)
		os.Exit(1)
	}
	const pTotal = 1024
	cols := tensor.New(prog.K, pTotal)
	tensor.FillGaussian(cols, tensor.NewRNG(7), 1)
	idst := make([]float32, prog.M*pTotal)
	var is tensor.Scratch
	results = append(results, bench("ipe_matrix_64x144_p1024", shards,
		func() { prog.ExecuteMatrixInto(idst, cols.Data(), pTotal, &is) },
		func() { prog.ExecuteMatrixIntoPar(idst, cols.Data(), pTotal, par); par.Reset() },
	))

	// End-to-end executor on LeNet-5 with the paper's encoding forced.
	g := nn.LeNet5(1, 9)
	plan, err := runtime.Compile(g, runtime.Options{Force: runtime.ImplIPE, Bits: 4})
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: compile: %v\n", err)
		os.Exit(1)
	}
	in := tensor.New(1, 1, 28, 28)
	tensor.FillGaussian(in, tensor.NewRNG(8), 1)
	eSerial := plan.NewExecutor()
	eSerial.SetParallelism(1)
	ePar := plan.NewExecutor()
	ePar.SetParallelism(shards)
	if _, err := eSerial.Run(in); err != nil { // warm both arenas
		fmt.Fprintf(os.Stderr, "inspire-perf: run: %v\n", err)
		os.Exit(1)
	}
	if _, err := ePar.Run(in); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: run: %v\n", err)
		os.Exit(1)
	}
	results = append(results, bench("executor_lenet5_ipe", shards,
		func() { eSerial.Run(in) },
		func() { ePar.Run(in) },
	))

	// RunBatch: inter-chunk workers composed with intra-op shards.
	big := tensor.New(8, 1, 28, 28)
	tensor.FillGaussian(big, tensor.NewRNG(10), 1)
	results = append(results, bench("runbatch_lenet5_ipe_b8", shards,
		func() { plan.RunBatch(big, 1) },
		func() { plan.RunBatch(big, 0) },
	))

	out := reportJSON{
		Benchmark:  "BENCH_2: intra-op worker-pool sharding (serial vs sharded, bit-identical outputs)",
		GOOS:       goruntime.GOOS,
		GOARCH:     goruntime.GOARCH,
		NumCPU:     goruntime.NumCPU(),
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		Note: "speedup = serial_ns_op / parallel_ns_op; on a single-core runner the pool " +
			"degrades to inline execution, so ~1.0 demonstrates bounded sharding overhead " +
			"rather than a parallel speedup",
		Results: results,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-perf: %v\n", err)
		os.Exit(1)
	}
}
