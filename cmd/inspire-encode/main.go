// Command inspire-encode index-pair encodes one convolution layer and
// prints the encoder statistics and cost model, optionally verifying the
// encode→decode round trip.
//
// Usage:
//
//	inspire-encode -oc 128 -ic 128 -k 3 -bits 4 -sparsity 0.5 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/tensor"
)

func main() {
	oc := flag.Int("oc", 128, "output channels")
	ic := flag.Int("ic", 128, "input channels")
	k := flag.Int("k", 3, "kernel size (k x k)")
	bits := flag.Int("bits", 4, "quantization bit-width")
	sparsity := flag.Float64("sparsity", 0, "magnitude-pruning sparsity in [0,1)")
	dict := flag.Int("dict", 4096, "dictionary budget (0 = unlimited)")
	depth := flag.Int("depth", 8, "merge depth bound (0 = unlimited)")
	tile := flag.Int("tile", 256, "tile-local constraint (0 = global)")
	greedy := flag.Bool("greedy", false, "use exact-greedy BPE instead of layered rounds")
	verify := flag.Bool("verify", false, "verify the encode→decode round trip")
	out := flag.String("o", "", "write the serialized program (wire format) to this file")
	seed := flag.Uint64("seed", 1, "weight RNG seed")
	flag.Parse()

	spec := tensor.ConvSpec{InC: *ic, OutC: *oc, KH: *k, KW: *k, StrideH: 1, StrideW: 1,
		PadH: *k / 2, PadW: *k / 2}
	r := tensor.NewRNG(*seed)
	w := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(w, r, tensor.KaimingStd(*ic**k**k))
	if *sparsity > 0 {
		quant.PruneMagnitude(w, *sparsity)
	}
	q := quant.Quantize(w, *bits, quant.PerTensor)

	cfg := ipe.Config{MaxDict: *dict, MaxDepth: *depth, TileSize: *tile}
	if *greedy {
		cfg.Policy = ipe.PolicyGreedy
	}
	start := time.Now()
	prog, stats, err := ipe.Encode(q, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-encode: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	m := q.Shape[0]
	kk := q.NumElements() / m
	cost := prog.Cost()
	dense := ipe.DenseCost(m, kk)

	t := report.NewTable(fmt.Sprintf("IPE encoding of %dx%dx%dx%d @ %d bits", *oc, *ic, *k, *k, *bits),
		"metric", "value")
	t.AddRow("weights", report.Count(int64(q.NumElements())))
	t.AddRow("distinct values", fmt.Sprint(q.DistinctValues()))
	t.AddRow("zero sparsity", fmt.Sprintf("%.1f%%", q.Sparsity()*100))
	t.AddRow("encode time", elapsed.Round(time.Microsecond).String())
	t.AddRow("merge rounds", fmt.Sprint(stats.Rounds))
	t.AddRow("dictionary entries", fmt.Sprint(prog.DictSize()))
	t.AddRow("max depth used", fmt.Sprint(prog.MaxDepthUsed()))
	t.AddRow("stream compression", fmt.Sprintf("%.2fx", stats.CompressionRatio()))
	t.AddRow("ops/pixel (ipe)", report.Count(cost.Total()))
	t.AddRow("ops/pixel (dense)", report.Count(dense.Total()))
	t.AddRow("speedup vs dense", report.Speedup(cost.Speedup(dense)))
	t.Fprint(os.Stdout)

	if *verify {
		if err := prog.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-encode: program invalid: %v\n", err)
			os.Exit(1)
		}
		if err := prog.VerifyAgainst(q); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-encode: round-trip FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("round-trip verification: OK")
	}

	if *out != "" {
		data, err := prog.MarshalBinary()
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-encode: serialize: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-encode: %v\n", err)
			os.Exit(1)
		}
		// Read back and re-validate so a written file is always loadable.
		var back ipe.Program
		if err := back.UnmarshalBinary(data); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-encode: wrote unloadable program: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s)\n", *out, report.Bytes(int64(len(data))))
	}
}
