// Command inspire-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	inspire-bench -exp all            # every table and figure
//	inspire-bench -exp table2         # one experiment
//	inspire-bench -exp fig5 -hw 224   # paper-scale input size
//	inspire-bench -exp all -fast      # trimmed quick run
//
// Experiment ids: table1..table4, fig4, fig5, fig6a, fig6b, fig6c, fig7,
// fig8 (see DESIGN.md §4 for what each reproduces).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/ipe"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	hw := flag.Int("hw", 0, "model input spatial size (default 64; 224 = paper scale)")
	bits := flag.Int("bits", 4, "weight quantization bit-width")
	seed := flag.Uint64("seed", 1, "workload RNG seed")
	fast := flag.Bool("fast", false, "trimmed layer/model sets for a quick run")
	dict := flag.Int("dict", 4096, "IPE dictionary budget (0 = unlimited)")
	depth := flag.Int("depth", 8, "IPE merge depth bound (0 = unlimited)")
	tile := flag.Int("tile", 256, "IPE tile-local constraint (0 = global)")
	csv := flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	flag.Parse()

	cfg := experiments.Config{
		Out:  os.Stdout,
		HW:   *hw,
		Bits: *bits,
		Seed: *seed,
		Fast: *fast,
		CSV:  *csv,
		IPE:  ipe.Config{MaxDict: *dict, MaxDepth: *depth, TileSize: *tile},
	}
	start := time.Now()
	var err error
	if *exp == "all" {
		err = experiments.RunAll(cfg)
	} else {
		err = experiments.Run(*exp, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stdout, "\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
}
