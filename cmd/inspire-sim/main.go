// Command inspire-sim compiles a model with the INSPIRE runtime, prints the
// per-operator implementation selection and modeled execution, validates
// the activation memory plan, and optionally runs a real inference.
//
// Usage:
//
//	inspire-sim -model resnet18 -hw 64 -bits 4
//	inspire-sim -model mobilenet -force ipe -run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func main() {
	model := flag.String("model", "resnet18", "model: lenet5 | resnet18 | vgg16 | mobilenet")
	hw := flag.Int("hw", 64, "input spatial size (multiple of 32)")
	bits := flag.Int("bits", 4, "weight quantization bit-width")
	force := flag.String("force", "auto", "implementation: auto | dense | csr | factorized | ipe | winograd")
	tune := flag.Bool("tune", false, "auto-tune dense schedules")
	run := flag.Bool("run", false, "execute one inference on the CPU")
	seed := flag.Uint64("seed", 1, "weight RNG seed")
	save := flag.String("save", "", "write the model (graph + weights) to this file and exit")
	dot := flag.String("dot", "", "write the graph in Graphviz DOT format to this file")
	load := flag.String("load", "", "load the model from this file instead of building one")
	flag.Parse()

	var g *graph.Graph
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		g, err = graph.ReadGraph(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: loading model: %v\n", err)
			os.Exit(1)
		}
		*model = *load
	}
	if g == nil {
		switch *model {
		case "lenet5":
			g = nn.LeNet5(1, *seed)
		case "resnet18":
			g = nn.ResNet18(1, *hw, 10, *seed)
		case "vgg16":
			g = nn.VGG16(1, *hw, 10, *seed)
		case "mobilenet":
			g = nn.MobileNetV1(1, *hw, 10, *seed)
		case "squeezenet":
			g = nn.SqueezeNet(1, *hw, 10, *seed)
		default:
			fmt.Fprintf(os.Stderr, "inspire-sim: unknown model %q\n", *model)
			os.Exit(1)
		}
	}

	if *save != "" {
		if err := g.InferShapes(); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		if err := g.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: saving model: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved %s\n", *save)
		return
	}

	var forceImpl runtime.Impl
	switch *force {
	case "auto":
		forceImpl = runtime.ImplAuto
	case "dense":
		forceImpl = runtime.ImplDense
	case "csr":
		forceImpl = runtime.ImplCSR
	case "factorized":
		forceImpl = runtime.ImplFactorized
	case "ipe":
		forceImpl = runtime.ImplIPE
	case "winograd":
		forceImpl = runtime.ImplWinograd
	default:
		fmt.Fprintf(os.Stderr, "inspire-sim: unknown implementation %q\n", *force)
		os.Exit(1)
	}

	if *dot != "" {
		if err := g.InferShapes(); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		if err := g.WriteDOT(f); err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *dot)
	}

	hwCfg := accel.Default()
	plan, err := runtime.Compile(g, runtime.Options{
		Bits: *bits, Force: forceImpl, TuneDense: *tune, HW: hwCfg, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-sim: %v\n", err)
		os.Exit(1)
	}

	t := plan.Describe()
	t.Title = fmt.Sprintf("%s plan (input %dx%d, %d-bit weights)", *model, *hw, *hw, *bits)
	t.Fprint(os.Stdout)
	fmt.Printf("\ntotal: %.1f us, %.2f uJ, DRAM %s, arena %s\n",
		plan.Total.Microseconds(hwCfg), plan.Total.EnergyPJ/1e6,
		report.Bytes(plan.Total.DRAMBytes), report.Bytes(plan.ArenaBytes))
	counts := plan.ImplCounts()
	fmt.Printf("impl selection: dense=%d winograd=%d csr=%d factorized=%d ipe=%d\n",
		counts[runtime.ImplDense], counts[runtime.ImplWinograd], counts[runtime.ImplCSR],
		counts[runtime.ImplFactorized], counts[runtime.ImplIPE])

	if err := runtime.ValidatePlan(plan.Graph, plan.Alloc, plan.ArenaBytes); err != nil {
		fmt.Fprintf(os.Stderr, "inspire-sim: memory plan INVALID: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("memory plan: valid (no live-buffer overlap)")

	if *run {
		r := tensor.NewRNG(*seed + 1)
		in := tensor.New(plan.Graph.In.OutShape...)
		tensor.FillGaussian(in, r, 1)
		out, err := plan.Run(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inspire-sim: run failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("inference output shape %v, argmax %d\n", out.Shape(), argmax(out.Data()))
	}
}

func argmax(xs []float32) int {
	best, bi := xs[0], 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
