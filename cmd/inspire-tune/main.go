// Command inspire-tune searches the tiling-schedule space of one
// convolution workload on the simulated accelerator and prints the
// convergence trace and the best schedule found.
//
// Usage:
//
//	inspire-tune -oc 64 -ic 64 -hw 32 -tuner genetic -budget 200
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/accel"
	"repro/internal/autotune"
	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func main() {
	oc := flag.Int("oc", 64, "output channels")
	ic := flag.Int("ic", 64, "input channels")
	k := flag.Int("k", 3, "kernel size")
	stride := flag.Int("stride", 1, "stride")
	hw := flag.Int("hw", 32, "input spatial size")
	tuner := flag.String("tuner", "genetic", "tuner: random | genetic | annealing | surrogate | exhaustive")
	budget := flag.Int("budget", 200, "evaluation budget")
	seed := flag.Uint64("seed", 1, "tuner RNG seed")
	trace := flag.Bool("trace", false, "print the best schedule's pipeline timeline")
	flag.Parse()

	wl := schedule.Workload{
		Spec: tensor.ConvSpec{InC: *ic, OutC: *oc, KH: *k, KW: *k,
			StrideH: *stride, StrideW: *stride, PadH: *k / 2, PadW: *k / 2},
		N: 1, H: *hw, W: *hw,
	}
	hwCfg := accel.Default()
	sp := schedule.NewSpace(wl, hwCfg)

	var tn autotune.Tuner
	switch *tuner {
	case "random":
		tn = autotune.Random{}
	case "genetic":
		tn = autotune.Genetic{}
	case "annealing":
		tn = autotune.Annealing{}
	case "surrogate":
		tn = autotune.Surrogate{}
	case "exhaustive":
		tn = autotune.Exhaustive{}
	default:
		fmt.Fprintf(os.Stderr, "inspire-tune: unknown tuner %q\n", *tuner)
		os.Exit(1)
	}

	fmt.Printf("workload: %s\nspace: %d points, dims %v\n", wl.Key(), sp.Size(), sp.Dims())
	res := tn.Tune(sp, *budget, *seed)
	if res.BestIdx == nil {
		fmt.Fprintln(os.Stderr, "inspire-tune: no legal schedule found")
		os.Exit(1)
	}

	t := report.NewTable("convergence", "trial", "best-cycles")
	last := math.Inf(1)
	for _, tr := range res.Trials {
		if tr.Best < last {
			t.AddRow(fmt.Sprint(tr.Index+1), report.Num(tr.Best))
			last = tr.Best
		}
	}
	t.Fprint(os.Stdout)

	best := sp.At(res.BestIdx)
	simRes, err := best.Simulate(wl, hwCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inspire-tune: best schedule failed to simulate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nbest schedule: %s\ncycles: %d (%.1f us), stalls: %d, energy: %.2f uJ\n",
		best, simRes.Cycles, simRes.Microseconds(hwCfg), simRes.StallCycles, simRes.EnergyPJ/1e6)

	if *trace {
		eff := hwCfg
		tiles := best.Tiles(wl)
		_, traces := eff.SimulateTilesTrace(wl.Key(), tiles, 24)
		fmt.Println()
		accel.PrintTimeline(os.Stdout, traces, 100)
	}
}
