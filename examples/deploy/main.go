// Deploy: encode a layer once, ship the flat binary instruction stream, and
// run inference from the loaded stream — the offline-compile / online-run
// split a fixed-function decoder would use, including the integer
// (8-bit activation) execution path.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/tensor"
)

func main() {
	// --- Offline: quantize, encode, serialize. ---
	r := tensor.NewRNG(99)
	w := tensor.New(128, 512)
	tensor.FillGaussian(w, r, tensor.KaimingStd(512))
	q := quant.Quantize(w, 4, quant.PerChannel)
	prog, stats, err := ipe.Encode(q, ipe.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	data, err := prog.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "inspire-deploy-layer.ipe")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: encoded 128x512 @ 4 bits → %s stream (%d dict pairs, %.2fx compression)\n",
		report.Bytes(int64(len(data))), prog.DictSize(), stats.CompressionRatio())
	fmt.Printf("         wrote %s\n", path)
	fmt.Printf("         scratch plan: %d slots for %d entries (linear-scan reuse)\n",
		prog.AllocateScratch().NumSlots, prog.DictSize())

	// --- Online: load the stream and run. ---
	loadedBytes, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var loaded ipe.Program
	if err := loaded.UnmarshalBinary(loadedBytes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online:  loaded and validated (%d symbols, depth %d)\n",
		loaded.NumSymbols(), loaded.MaxDepthUsed())

	x := make([]float32, loaded.K)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	yFloat := make([]float32, loaded.M)
	loaded.Execute(x, yFloat)

	// Integer path: quantize activations to 8 bits, run exactly in int64,
	// requantize.
	xp := quant.Calibrate([]*tensor.Tensor{tensor.From(x, loaded.K)}, 8)
	yInt := make([]float32, loaded.M)
	loaded.ExecuteQuantized(x, yInt, xp, 8)

	var maxDiff float64
	for i := range yFloat {
		d := float64(yFloat[i] - yInt[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("ran float and int8 paths: max |float − int8| = %.3e (activation quantization error)\n", maxDiff)
	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cleaned up; deployment round trip complete")
}
