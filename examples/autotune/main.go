// Auto-tuning walkthrough: search the tiling-schedule space of one ResNet
// convolution with three algorithms and compare their convergence against
// the exhaustive optimum — the AutoTVM-style loop of the INSPIRE stack.
package main

import (
	"fmt"
	"os"

	"repro/internal/accel"
	"repro/internal/autotune"
	"repro/internal/report"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

func main() {
	wl := schedule.Workload{
		Spec: tensor.ConvSpec{InC: 64, OutC: 128, KH: 3, KW: 3,
			StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		N: 1, H: 32, W: 32,
	}
	hw := accel.Default()
	sp := schedule.NewSpace(wl, hw)
	fmt.Printf("workload %s\nschedule space: %d points, dims %v\n\n", wl.Key(), sp.Size(), sp.Dims())

	// Ground truth by brute force (feasible on this space).
	opt := autotune.Exhaustive{}.Tune(sp, 0, 0)
	fmt.Printf("exhaustive optimum: %s → %s cycles\n\n",
		sp.At(opt.BestIdx), report.Num(opt.BestCost))

	const budget = 200
	t := report.NewTable("tuner comparison (budget 200 evaluations, 3 seeds)",
		"tuner", "best@25", "best@50", "best@100", "best@200", "vs optimal")
	for _, tn := range []autotune.Tuner{autotune.Random{}, autotune.Genetic{}, autotune.Annealing{}} {
		at := map[int]float64{}
		var finalSum float64
		seeds := []uint64{1, 2, 3}
		for _, seed := range seeds {
			res := tn.Tune(sp, budget, seed)
			for _, cp := range []int{25, 50, 100, 200} {
				if len(res.Trials) >= cp {
					at[cp] += res.Trials[cp-1].Best
				}
			}
			finalSum += res.BestCost
		}
		n := float64(len(seeds))
		t.AddRow(tn.Name(),
			report.Num(at[25]/n), report.Num(at[50]/n),
			report.Num(at[100]/n), report.Num(at[200]/n),
			fmt.Sprintf("%.3f", finalSum/n/opt.BestCost))
	}
	t.Fprint(os.Stdout)
	fmt.Println("\n(vs optimal = average best-found cycles / exhaustive optimum; 1.000 is perfect)")
}
