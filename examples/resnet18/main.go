// ResNet-18 end to end: compile the model with the INSPIRE runtime, let
// system-level exploration pick the fastest implementation per operator on
// the simulated accelerator, validate the activation memory plan, and run a
// real inference on the CPU.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/accel"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func main() {
	const hw = 32 // input spatial size; use 224 for paper-scale shapes
	g := nn.ResNet18(1, hw, 10, 7)
	hwCfg := accel.Default()

	plan, err := runtime.Compile(g, runtime.Options{Bits: 4, HW: hwCfg})
	if err != nil {
		log.Fatal(err)
	}

	// Per-layer selection report: which implementation won each conv.
	t := report.NewTable("ResNet-18 per-operator selection (4-bit weights)",
		"op", "impl", "cycles", "best-alternative")
	for _, op := range plan.Ops {
		if op.Node.Kind != graph.OpConv && op.Node.Kind != graph.OpDense {
			continue
		}
		// Find the runner-up for context.
		second := int64(-1)
		for impl, r := range op.Candidates {
			if impl != op.Impl && (second < 0 || r.Cycles < second) {
				second = r.Cycles
			}
		}
		t.AddRow(op.Node.Name, op.Impl.String(),
			report.Count(op.Sim.Cycles), report.Count(second))
	}
	t.Fprint(os.Stdout)

	counts := plan.ImplCounts()
	fmt.Printf("\nselection: dense=%d csr=%d factorized=%d ipe=%d (of %d conv/dense ops)\n",
		counts[runtime.ImplDense], counts[runtime.ImplCSR],
		counts[runtime.ImplFactorized], counts[runtime.ImplIPE],
		counts[runtime.ImplDense]+counts[runtime.ImplCSR]+
			counts[runtime.ImplFactorized]+counts[runtime.ImplIPE])
	fmt.Printf("modeled latency: %.1f us, energy %.2f uJ, arena %s\n",
		plan.Total.Microseconds(hwCfg), plan.Total.EnergyPJ/1e6, report.Bytes(plan.ArenaBytes))

	if err := runtime.ValidatePlan(plan.Graph, plan.Alloc, plan.ArenaBytes); err != nil {
		log.Fatalf("memory plan invalid: %v", err)
	}
	fmt.Println("memory plan: valid")

	// Real inference on the CPU with the selected (quantized) kernels.
	r := tensor.NewRNG(8)
	in := tensor.New(1, 3, hw, hw)
	tensor.FillGaussian(in, r, 1)
	out, err := plan.Run(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference ran: output %v, class probabilities sum %.4f\n",
		out.Shape(), out.Sum())
}
