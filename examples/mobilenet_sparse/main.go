// MobileNet pruning study: sweep magnitude-pruning sparsity on a MobileNet
// pointwise (1x1) convolution and watch the implementation crossover — CSR
// only overtakes dense at high sparsity, while IPE wins much earlier
// because it exploits value repetition, not only zeros.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/report"
	"repro/internal/tensor"
)

func main() {
	// MobileNetV1's dsconv6.pw shape: 256→512 pointwise conv on a 8x8 map
	// (input 64x64 scale).
	spec := tensor.ConvSpec{InC: 256, OutC: 512, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	const h, w = 8, 8
	const bits = 4
	hwCfg := accel.Default()

	r := tensor.NewRNG(11)
	weights := tensor.New(spec.WeightShape()...)
	tensor.FillGaussian(weights, r, tensor.KaimingStd(spec.InC))

	t := report.NewTable("MobileNet pointwise conv: implementation crossover vs sparsity (4-bit)",
		"sparsity", "nnz", "dense(cyc)", "csr(cyc)", "ucnn(cyc)", "ipe(cyc)", "winner")
	for _, sp := range []float64{0, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95} {
		wc := weights.Clone()
		if sp > 0 {
			quant.PruneMagnitude(wc, sp)
		}
		q := quant.Quantize(wc, bits, quant.PerTensor)
		var nnz int64
		for _, c := range q.Codes {
			if c != 0 {
				nnz++
			}
		}

		dense := hwCfg.Simulate(accel.DenseConvProfile(spec, 1, h, w))
		csr := hwCfg.Simulate(accel.SparseConvProfile(spec, 1, h, w, nnz))

		fl, err := baseline.NewConvFactorized(wc, nil, spec, bits, quant.PerTensor)
		if err != nil {
			log.Fatal(err)
		}
		var syms int
		for _, m := range fl.Mats {
			syms += m.K
		}
		ucnn := hwCfg.Simulate(accel.FactorizedConvProfile(spec, 1, h, w, fl.Cost(), syms))

		il, _, err := ipe.EncodeConv(wc, nil, spec, bits, quant.PerTensor, ipe.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		ipeRes := hwCfg.Simulate(accel.IPEConvProfile(il, 1, h, w))

		winner, best := "dense", dense.Cycles
		for name, res := range map[string]accel.Result{"csr": csr, "ucnn": ucnn, "ipe": ipeRes} {
			if res.Cycles < best {
				winner, best = name, res.Cycles
			}
		}
		t.AddRow(fmt.Sprintf("%.0f%%", sp*100),
			report.Count(nnz),
			report.Count(dense.Cycles), report.Count(csr.Cycles),
			report.Count(ucnn.Cycles), report.Count(ipeRes.Cycles),
			winner)
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nnote: IPE wins from moderate sparsity because value repetition, not")
	fmt.Println("just zeros, feeds the pair dictionary; CSR needs high sparsity to pay")
	fmt.Println("for its per-nonzero index traffic.")
}
