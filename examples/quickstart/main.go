// Quickstart: index-pair encode a small fully connected layer, execute it,
// and verify it matches the dense reference — the five-minute tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/ipe"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func main() {
	// 1. Make a weight matrix (64 outputs, 256 inputs) with seeded
	//    synthetic values, as a stand-in for trained weights.
	r := tensor.NewRNG(42)
	w := tensor.New(64, 256)
	tensor.FillGaussian(w, r, tensor.KaimingStd(256))

	// 2. Quantize to 4 bits: few distinct values → lots of index-set
	//    repetition for the encoder to harvest.
	q := quant.Quantize(w, 4, quant.PerTensor)
	fmt.Printf("quantized: %d weights, %d distinct values, %.1f%% zero\n",
		q.NumElements(), q.DistinctValues(), q.Sparsity()*100)

	// 3. Index-pair encode under hardware-friendly constraints.
	prog, stats, err := ipe.Encode(q, ipe.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded: %d dictionary pairs, depth %d, stream compressed %.2fx in %d rounds\n",
		prog.DictSize(), prog.MaxDepthUsed(), stats.CompressionRatio(), stats.Rounds)

	// 4. The cost model: how many scalar ops does one inference need?
	cost := prog.Cost()
	dense := ipe.DenseCost(64, 256)
	fmt.Printf("ops: dense %d (%d mul + %d add) → ipe %d (%d mul + %d add): %.2fx fewer\n",
		dense.Total(), dense.Muls, dense.Adds,
		cost.Total(), cost.Muls, cost.Adds,
		cost.Speedup(dense))

	// 5. Execute on a real input and compare with the dense reference over
	//    the dequantized weights.
	x := make([]float32, 256)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	y := make([]float32, 64)
	prog.Execute(x, y)

	deq := q.Dequantize()
	want := make([]float32, 64)
	tensor.MatVec(deq.Data(), x, want, 64, 256)
	var maxDiff float64
	for i := range y {
		d := float64(y[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("executed: max |ipe - dense| = %.2e (same math, fewer ops)\n", maxDiff)

	// 6. And the round-trip guarantee: decoding the program reproduces the
	//    quantized weights bit-exactly.
	if err := prog.VerifyAgainst(q); err != nil {
		log.Fatalf("round trip failed: %v", err)
	}
	fmt.Println("round-trip verification: OK")
}
